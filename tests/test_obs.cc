// Observability tests (obs/metrics.h, obs/trace.h, obs/event_log.h and
// their serving-stack integration):
//
//  (a) histogram bucketing — the fixed log2 bounds place values in the
//      right buckets, snapshots and quantiles agree, and
//      merge_prometheus of N separately-rendered registries is
//      BUCKET-EXACT (equal to one registry that observed the union);
//  (b) span lifecycle — nested TraceSpans close (open_spans back to 0)
//      while unwinding failpoint-injected throws and deadline expiry,
//      through the real TranspileService/Scheduler propagation seam;
//  (c) determinism — transpiled output is bit-identical with tracing
//      armed vs off, across the Table I golden circuits and both
//      routers (spans read clocks and append to side buffers only);
//  (d) the wire — `option trace=1` returns per-stage span lines
//      covering queue-wait, layout (per-trial), routing, and
//      cache-insert on a miss, and a decode/admission hit-path trace
//      on `status cache_hit`; untraced requests carry no span lines;
//  (e) fleet merge — a 3-worker front door's `metrics` verb equals
//      merge_prometheus of the individual worker scrapes;
//  (f) merged_stats hardening — a shard reporting a non-numeric stat
//      row stays LIVE, the row passes through as shard<i>_<key>, and
//      merge_skipped counts it (the old stoull path marked the shard
//      dead and silently dropped the row);
//  (g) the bounded event log — drop-oldest with a visible dropped
//      counter, and JSON escaping in format_event.

#include <cstring>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "nassc/circuits/library.h"
#include "nassc/ir/qasm.h"
#include "nassc/obs/event_log.h"
#include "nassc/obs/metrics.h"
#include "nassc/obs/trace.h"
#include "nassc/serve/client.h"
#include "nassc/serve/protocol.h"
#include "nassc/serve/server.h"
#include "nassc/serve/shard_router.h"
#include "nassc/service/distance_cache.h"
#include "nassc/service/errors.h"
#include "nassc/service/failpoint.h"
#include "nassc/service/scheduler.h"
#include "nassc/service/transpile_service.h"
#include "nassc/topo/backends.h"
#include "nassc/transpile/transpile.h"

namespace nassc {
namespace {

std::string
socket_path(const std::string &suffix)
{
    return "/tmp/nassc_obs_" + std::to_string(::getpid()) + "_" + suffix +
           ".sock";
}

std::shared_ptr<const Backend>
shared_montreal()
{
    static auto backend =
        std::make_shared<const Backend>(montreal_backend());
    return backend;
}

std::map<std::string, std::uint64_t>
span_map(const ServeResponse &resp)
{
    std::map<std::string, std::uint64_t> m;
    for (const auto &span : resp.spans)
        m[span.first] += 1; // count occurrences; durations are timing
    return m;
}

// ------------------------------------------------------------ buckets

TEST(ObsHistogram, LogBucketsPlaceValuesExactly)
{
    obs::MetricsRegistry reg;
    obs::Histogram &h = reg.histogram("t_us", "test");
    // Inclusive upper edges: us in (2^(k-1), 2^k] -> finite bucket k.
    h.observe(0);       // bucket 0 (le 1)
    h.observe(1);       // bucket 0
    h.observe(2);       // bucket 1 (le 2)
    h.observe(3);       // bucket 2 (le 4)
    h.observe(4);       // bucket 2
    h.observe(1024);    // bucket 10
    h.observe(1025);    // bucket 11
    h.observe(obs::bucket_bound(25));     // last finite bucket
    h.observe(obs::bucket_bound(25) + 1); // +Inf
    const obs::HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.buckets[0], 2u);
    EXPECT_EQ(s.buckets[1], 1u);
    EXPECT_EQ(s.buckets[2], 2u);
    EXPECT_EQ(s.buckets[10], 1u);
    EXPECT_EQ(s.buckets[11], 1u);
    EXPECT_EQ(s.buckets[25], 1u);
    EXPECT_EQ(s.buckets[obs::kFiniteBuckets], 1u);
    EXPECT_EQ(s.count, 9u);
    // Quantiles walk cumulative rank over the shared edges.
    EXPECT_EQ(s.quantile_us(0.0), obs::bucket_bound(0));
    EXPECT_EQ(s.quantile_us(1.0), obs::bucket_bound(26));
    obs::Histogram &empty = reg.histogram("e_us", "test");
    EXPECT_EQ(empty.snapshot().quantile_us(0.5), 0u);
}

TEST(ObsHistogram, MergePrometheusIsBucketExact)
{
    // Three "shard" registries and one "single process" registry that
    // observes the union: the merged render of the three must equal
    // the union's render byte for byte.  This is the property that
    // makes the fleet `metrics` verb exact — same fixed bounds, so
    // cumulative buckets sum without re-binning.
    obs::MetricsRegistry shard_a;
    obs::MetricsRegistry shard_b;
    obs::MetricsRegistry shard_c;
    obs::MetricsRegistry all;
    const std::vector<std::uint64_t> va = {1, 3, 900, 7};
    const std::vector<std::uint64_t> vb = {2, 2, 65536};
    const std::vector<std::uint64_t> vc = {5000000, 12, 0};
    auto feed = [](obs::MetricsRegistry &reg,
                   const std::vector<std::uint64_t> &vals,
                   std::uint64_t reqs) {
        obs::Histogram &h = reg.histogram("nassc_t_us", "test hist");
        for (std::uint64_t v : vals)
            h.observe(v);
        reg.counter("nassc_reqs_total", "test counter").inc(reqs);
    };
    feed(shard_a, va, 4);
    feed(shard_b, vb, 3);
    feed(shard_c, vc, 3);
    std::vector<std::uint64_t> merged_vals;
    for (const auto *v : {&va, &vb, &vc})
        merged_vals.insert(merged_vals.end(), v->begin(), v->end());
    feed(all, merged_vals, 10);

    const std::string merged = obs::merge_prometheus(
        {shard_a.render(), shard_b.render(), shard_c.render()});
    EXPECT_EQ(merged, all.render());
}

TEST(ObsHistogram, MergePassesNonNumericLinesOnce)
{
    const std::string a = "# TYPE x counter\nx 3\nbuild_info version=1\n";
    const std::string b = "# TYPE x counter\nx 4\nbuild_info version=1\n";
    const std::string merged = obs::merge_prometheus({a, b});
    EXPECT_NE(merged.find("x 7\n"), std::string::npos);
    // Comments and unparsable lines are kept first-seen, not summed or
    // duplicated.
    EXPECT_EQ(merged.find("# TYPE x counter"),
              merged.rfind("# TYPE x counter"));
    EXPECT_EQ(merged.find("build_info version=1"),
              merged.rfind("build_info version=1"));
}

TEST(ObsRegistry, TypeMismatchThrows)
{
    obs::MetricsRegistry reg;
    reg.counter("dual", "as counter");
    EXPECT_THROW(reg.histogram("dual", "as histogram"), std::logic_error);
    // Same name + same type is find-not-create.
    EXPECT_EQ(&reg.counter("dual", "again"), &reg.counter("dual", "again"));
}

// ------------------------------------------------------ span lifecycle

TEST(ObsTrace, NestedSpansCloseWhileUnwinding)
{
    auto tracer = std::make_shared<obs::Tracer>("unwind-test");
    {
        obs::TraceScope scope(tracer);
        try {
            obs::TraceSpan outer("outer");
            obs::TraceSpan inner("inner");
            throw std::runtime_error("boom");
        } catch (const std::runtime_error &) {
        }
    }
    EXPECT_EQ(tracer->open_spans(), 0);
    const auto spans = tracer->spans();
    ASSERT_EQ(spans.size(), 2u);
    // Destruction order: inner closes (and records) before outer.
    EXPECT_EQ(spans[0].first, "inner");
    EXPECT_EQ(spans[1].first, "outer");
}

TEST(ObsTrace, ServiceSpansCloseUnderFailpointThrow)
{
    failpoint::disarm_all();
    ServiceOptions sopts;
    sopts.scheduler = std::make_shared<Scheduler>(2);
    TranspileService service(sopts);
    TranspileOptions opts;
    opts.router = RoutingAlgorithm::kSabre;

    auto tracer = std::make_shared<obs::Tracer>("fp-throw");
    {
        obs::TraceScope scope(tracer);
        failpoint::ScopedFailpoint fp("service.transpile",
                                      "1*throw(injected)");
        TranspileTicket ticket = service.submit(ghz(5), shared_montreal(),
                                                opts);
        EXPECT_THROW(ticket.get(), std::exception);
    }
    // The worker's transpile span closed during unwinding and recorded
    // itself; nothing stayed open.
    EXPECT_EQ(tracer->open_spans(), 0);
    std::map<std::string, std::uint64_t> names;
    for (const auto &span : tracer->spans())
        ++names[span.first];
    EXPECT_EQ(names.count("admission"), 1u);
    EXPECT_EQ(names.count("transpile"), 1u);
}

TEST(ObsTrace, ServiceSpansCloseUnderDeadlineExpiry)
{
    failpoint::disarm_all();
    ServiceOptions sopts;
    sopts.scheduler = std::make_shared<Scheduler>(2);
    TranspileService service(sopts);
    TranspileOptions opts;
    opts.deadline_ms = 1; // expires mid-search on a 15q circuit

    auto tracer = std::make_shared<obs::Tracer>("deadline");
    {
        obs::TraceScope scope(tracer);
        TranspileTicket ticket = service.submit(
            benchmark_by_name("qft_n15"), shared_montreal(), opts);
        try {
            ticket.get(); // degraded result or throw — both legal
        } catch (const TranspileDeadlineExceeded &) {
        }
    }
    EXPECT_EQ(tracer->open_spans(), 0);
}

// --------------------------------------------------------- determinism

TEST(ObsTrace, TracingOnVsOffIsBitIdentical)
{
    for (const char *name : {"vqe_n8", "qpe_n9", "adder_n10"}) {
        const QuantumCircuit qc = benchmark_by_name(name);
        for (RoutingAlgorithm router :
             {RoutingAlgorithm::kNassc, RoutingAlgorithm::kSabre}) {
            TranspileOptions opts;
            opts.router = router;
            opts.seed = 7;

            DistanceCache cold_a;
            const TranspileResult plain =
                transpile(qc, montreal_backend(), opts, cold_a);

            auto tracer = std::make_shared<obs::Tracer>("determinism");
            DistanceCache cold_b;
            TranspileResult traced = [&] {
                obs::TraceScope scope(tracer);
                return transpile(qc, montreal_backend(), opts, cold_b);
            }();

            EXPECT_EQ(to_qasm(plain.circuit), to_qasm(traced.circuit))
                << name;
            EXPECT_EQ(plain.circuit.fingerprint(),
                      traced.circuit.fingerprint())
                << name;
            EXPECT_EQ(plain.initial_l2p, traced.initial_l2p) << name;
            EXPECT_EQ(plain.routing_stats.num_swaps,
                      traced.routing_stats.num_swaps)
                << name;
            // The traced run actually traced something.
            EXPECT_FALSE(tracer->spans().empty()) << name;
        }
    }
}

// ------------------------------------------------------------ the wire

TEST(ObsWire, TraceOptionReturnsStageSpans)
{
    ServerOptions options;
    options.unix_path = socket_path("trace");
    NasscServer server(options);
    server.start();
    ServeClient client = ServeClient::connect_unix(server.unix_path());

    const std::string qasm = to_qasm(benchmark_by_name("vqe_n8"));
    // layout_trials > 1 sends trials through Scheduler::parallel_for,
    // so the per-trial spans below also pin the Job trace-propagation
    // seam (spans recorded on stolen worker threads land on this
    // request's tracer).
    const std::vector<std::pair<std::string, std::string>> traced_opts = {
        {"router", "nassc"}, {"seed", "3"}, {"layout_trials", "4"},
        {"trace", "1"}};

    // Miss path: every documented stage appears.
    const ServeResponse miss =
        client.transpile_qasm(qasm, "ibmq_montreal", traced_opts);
    EXPECT_EQ(miss.source, "transpiled");
    EXPECT_FALSE(miss.trace_id.empty());
    const std::map<std::string, std::uint64_t> stages = span_map(miss);
    for (const char *stage :
         {"decode", "admission", "queue_wait", "distance_resolve",
          "layout", "routing", "cache_insert", "transpile"})
        EXPECT_TRUE(stages.count(stage)) << "missing span " << stage;
    // Per-trial spans: one per completed layout trial, several trials.
    ASSERT_TRUE(stages.count("layout_trial"));
    EXPECT_GT(stages.at("layout_trial"), 1u);

    // Hit path: same request again reports the cache_hit trace
    // (decode + admission — the request never reaches a worker).
    const ServeResponse hit =
        client.transpile_qasm(qasm, "ibmq_montreal", traced_opts);
    EXPECT_EQ(hit.source, "cache_hit");
    EXPECT_FALSE(hit.trace_id.empty());
    EXPECT_NE(hit.trace_id, miss.trace_id);
    const std::map<std::string, std::uint64_t> hit_stages = span_map(hit);
    EXPECT_TRUE(hit_stages.count("decode"));
    EXPECT_TRUE(hit_stages.count("admission"));
    EXPECT_FALSE(hit_stages.count("queue_wait"));
    EXPECT_EQ(hit.qasm, miss.qasm);

    // trace=0 (and absent) responses carry no spans and no trace-id,
    // and the QASM body is bit-identical to the traced one.
    const ServeResponse off = client.transpile_qasm(
        qasm, "ibmq_montreal",
        {{"router", "nassc"}, {"seed", "3"}, {"layout_trials", "4"},
         {"trace", "0"}});
    EXPECT_TRUE(off.trace_id.empty());
    EXPECT_TRUE(off.spans.empty());
    EXPECT_EQ(off.qasm, miss.qasm);

    server.stop();
}

TEST(ObsWire, MetricsVerbRendersGlobalRegistry)
{
    ServerOptions options;
    options.unix_path = socket_path("metrics");
    NasscServer server(options);
    server.start();
    ServeClient client = ServeClient::connect_unix(server.unix_path());

    const std::uint64_t before =
        obs::StackMetrics::get().requests_total.value();
    client.transpile_qasm(to_qasm(ghz(5)), "ibmq_montreal",
                          {{"router", "sabre"}});
    const std::string body = client.metrics();
    EXPECT_NE(body.find("# TYPE nassc_requests_total counter"),
              std::string::npos);
    EXPECT_NE(body.find("nassc_requests_total " +
                        std::to_string(before + 1)),
              std::string::npos);
    EXPECT_NE(body.find("nassc_queue_wait_us_bucket{le=\"+Inf\"}"),
              std::string::npos);
    server.stop();
}

// ---------------------------------------------------------- fleet merge

TEST(ObsFleet, FrontMetricsEqualsMergedWorkerScrapes)
{
    // Three in-process workers and a forwarding front, exactly as
    // test_shard_router.cc builds them.
    ShardRouterOptions ropts;
    std::vector<std::unique_ptr<NasscServer>> workers;
    for (int s = 0; s < 3; ++s) {
        ServerOptions wopts;
        wopts.unix_path = socket_path("mw" + std::to_string(s));
        workers.push_back(std::make_unique<NasscServer>(wopts));
        workers.back()->start();
        ServeEndpoint endpoint;
        endpoint.unix_path = workers.back()->unix_path();
        ropts.shards.push_back(endpoint);
    }
    auto router = std::make_shared<ShardRouter>(std::move(ropts));
    ServerOptions fopts;
    fopts.unix_path = socket_path("mfront");
    fopts.shard_router = router;
    NasscServer front(fopts);
    front.start();

    ServeClient client = ServeClient::connect_unix(front.unix_path());
    for (const char *name : {"vqe_n8", "qpe_n9", "adder_n10"})
        client.transpile_qasm(to_qasm(benchmark_by_name(name)),
                              "ibmq_montreal", {{"router", "sabre"}});

    // Scrape each worker directly, then the front.  All four registries
    // are THE process-global one here (in-process fleet), so the only
    // drift between scrapes is the decode histogram each scrape itself
    // feeds — strip its lines and demand byte equality on the rest,
    // which pins the whole socket path: verb handling on the workers,
    // fan-out, and bucket-wise merge on the front.
    auto strip_decode = [](const std::string &body) {
        std::string out;
        std::size_t pos = 0;
        while (pos < body.size()) {
            std::size_t end = body.find('\n', pos);
            if (end == std::string::npos)
                end = body.size();
            const std::string line = body.substr(pos, end - pos);
            if (line.find("nassc_decode_us") == std::string::npos)
                out += line + "\n";
            pos = end + 1;
        }
        return out;
    };
    std::vector<std::string> scrapes;
    for (auto &worker : workers) {
        ServeClient wc = ServeClient::connect_unix(worker->unix_path());
        scrapes.push_back(wc.metrics());
    }
    const std::string front_body = client.metrics();
    EXPECT_EQ(strip_decode(front_body),
              strip_decode(obs::merge_prometheus(scrapes)));
    EXPECT_NE(front_body.find("nassc_requests_total"), std::string::npos);

    front.stop();
    router->close_pools();
    for (auto &worker : workers)
        worker->stop();
}

// ---------------------------------------------- merged_stats hardening

/** A protocol-speaking fake shard whose stats include a row no
 *  integer parser can sum.  Real workers never do this today; the
 *  front must stay correct when one does tomorrow. */
struct FakeStatsShard
{
    std::string path = socket_path("fake");
    int listen_fd = -1;
    std::thread th;

    FakeStatsShard()
    {
        ::unlink(path.c_str());
        listen_fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::bind(listen_fd, reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(listen_fd, 4) != 0)
            throw std::runtime_error("fake shard: bind/listen failed");
        th = std::thread([this] {
            for (;;) {
                const int fd = ::accept(listen_fd, nullptr, nullptr);
                if (fd < 0)
                    return; // listener shut down
                try {
                    std::string payload;
                    while (read_frame(fd, payload)) {
                        ServeResponse resp;
                        resp.status = "ok";
                        resp.stats = {{"requests", "5"},
                                      {"uptime", "3h17m"},
                                      {"transpiles_ok", "2"}};
                        write_frame(fd, encode_response(resp));
                    }
                } catch (const std::exception &) {
                }
                ::close(fd);
            }
        });
    }

    ~FakeStatsShard()
    {
        ::shutdown(listen_fd, SHUT_RDWR);
        ::close(listen_fd);
        th.join();
        ::unlink(path.c_str());
    }
};

TEST(ObsMergedStats, NonNumericRowsPassThroughWithoutKillingTheShard)
{
    FakeStatsShard fake;
    ShardRouterOptions ropts;
    ServeEndpoint endpoint;
    endpoint.unix_path = fake.path;
    ropts.shards.push_back(endpoint);
    ShardRouter router(std::move(ropts));

    std::map<std::string, std::string> rows;
    for (const auto &kv : router.merged_stats())
        rows[kv.first] = kv.second;

    // Numeric rows summed normally; the odd row namespaced through and
    // counted — and the shard is still LIVE (the old stoull-in-the-try
    // marked it dead over a presentation problem).
    EXPECT_EQ(rows.at("requests"), "5");
    EXPECT_EQ(rows.at("transpiles_ok"), "2");
    EXPECT_EQ(rows.count("uptime"), 0u);
    EXPECT_EQ(rows.at("shard0_uptime"), "3h17m");
    EXPECT_EQ(rows.at("merge_skipped"), "1");
    EXPECT_EQ(rows.at("shards_live"), "1");
    EXPECT_TRUE(router.is_live(0));
}

// ------------------------------------------------------------ event log

TEST(ObsEventLog, DropsOldestPastCapacityAndCounts)
{
    obs::EventLog log;
    log.set_capacity(3);
    for (int i = 0; i < 5; ++i)
        log.append("e" + std::to_string(i));
    EXPECT_EQ(log.appended(), 5u);
    EXPECT_EQ(log.dropped(), 2u);
    const std::vector<std::string> lines = log.drain();
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines.front(), "e2");
    EXPECT_EQ(lines.back(), "e4");
    EXPECT_TRUE(log.drain().empty());
}

TEST(ObsEventLog, FormatEventEscapesAndMixesFields)
{
    const std::string line = obs::format_event(
        "slow_request", {{"trace", "ab\"c\n"}, {"status", "ok"}},
        {{"us", 12345}});
    EXPECT_EQ(line.find('\n'), std::string::npos) << "JSONL must be 1 line";
    EXPECT_NE(line.find("\"kind\":\"slow_request\""), std::string::npos);
    EXPECT_NE(line.find("\"trace\":\"ab\\\"c\\n\""), std::string::npos);
    EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos);
    EXPECT_NE(line.find("\"us\":12345"), std::string::npos);
    EXPECT_NE(line.find("\"ts_ms\":"), std::string::npos);
}

} // namespace
} // namespace nassc
