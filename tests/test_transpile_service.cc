// Tests for the async TranspileService (service/transpile_service.h):
//
//  (a) results are bit-identical to a direct transpile() call — across
//      1/2/8 scheduler workers, both routers, cache on and off, and
//      cold vs. warm cache (RoutingStats + circuit fingerprint + both
//      layouts);
//  (b) in-flight duplicates coalesce to ONE transpile, pinned
//      deterministically by pinning the only worker first;
//  (c) the LRU result cache is bounded, evicts least-recently-USED, and
//      its hit/miss/eviction/coalesce stats add up;
//  (d) failures propagate to every waiter and are never cached;
//  (e) BatchTranspiler through a service: submission-order results and
//      failed-job isolation preserved, duplicates dedupe, report deltas
//      match;
//  (f) concurrent mixed-workload clients: every key transpiles exactly
//      once, every client sees the right result.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nassc/circuits/library.h"
#include "nassc/service/batch_transpiler.h"
#include "nassc/service/errors.h"
#include "nassc/service/failpoint.h"
#include "nassc/service/scheduler.h"
#include "nassc/service/transpile_service.h"
#include "nassc/topo/backends.h"
#include "nassc/transpile/transpile.h"

namespace nassc {
namespace {

/** Spin until `pred` or ~5 s; returns whether pred came true. */
template <typename Pred>
bool
spin_until(Pred pred)
{
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!pred()) {
        if (std::chrono::steady_clock::now() > deadline)
            return false;
        std::this_thread::yield();
    }
    return true;
}

/** Full bit-identity check between two transpile results. */
void
expect_identical(const TranspileResult &a, const TranspileResult &b,
                 const std::string &what)
{
    EXPECT_EQ(a.circuit.fingerprint(), b.circuit.fingerprint()) << what;
    EXPECT_EQ(a.initial_l2p, b.initial_l2p) << what;
    EXPECT_EQ(a.final_l2p, b.final_l2p) << what;
    EXPECT_EQ(a.routing_stats.num_swaps, b.routing_stats.num_swaps) << what;
    EXPECT_EQ(a.routing_stats.flagged_swaps, b.routing_stats.flagged_swaps)
        << what;
    EXPECT_EQ(a.routing_stats.c2q_hits, b.routing_stats.c2q_hits) << what;
    EXPECT_EQ(a.cx_total, b.cx_total) << what;
    EXPECT_EQ(a.depth, b.depth) << what;
}

std::shared_ptr<const Backend>
shared_montreal()
{
    static auto backend =
        std::make_shared<const Backend>(montreal_backend());
    return backend;
}

TEST(TranspileService, MatchesDirectTranspileAcrossWorkersAndCacheModes)
{
    auto backend = shared_montreal();
    struct Case
    {
        std::string name;
        QuantumCircuit circuit;
        RoutingAlgorithm router;
    };
    std::vector<Case> cases = {
        {"qft5/nassc", qft(5), RoutingAlgorithm::kNassc},
        {"ghz6/sabre", ghz(6), RoutingAlgorithm::kSabre},
        {"bv6/nassc", bernstein_vazirani(6, 0x15), RoutingAlgorithm::kNassc},
    };

    // Reference: plain synchronous transpile(), private distance cache.
    std::vector<TranspileResult> want;
    for (const Case &c : cases) {
        TranspileOptions opts;
        opts.router = c.router;
        opts.seed = 11;
        DistanceCache dist;
        want.push_back(transpile(c.circuit, *backend, opts, dist));
    }

    for (int workers : {1, 2, 8}) {
        for (std::size_t capacity : {std::size_t{0}, std::size_t{64}}) {
            ServiceOptions sopts;
            sopts.cache_capacity = capacity;
            sopts.scheduler = std::make_shared<Scheduler>(workers);
            TranspileService service(sopts);

            // Two rounds: round 1 is cold, round 2 warm (or coalesced /
            // recomputed when the cache is off) — always bit-identical.
            for (int round = 0; round < 2; ++round) {
                std::vector<TranspileTicket> tickets;
                for (const Case &c : cases) {
                    TranspileOptions opts;
                    opts.router = c.router;
                    opts.seed = 11;
                    tickets.push_back(
                        service.submit(c.circuit, backend, opts));
                }
                for (std::size_t i = 0; i < cases.size(); ++i) {
                    SharedTranspileResult got = tickets[i].get();
                    expect_identical(
                        *got, want[i],
                        cases[i].name + " workers=" +
                            std::to_string(workers) + " cap=" +
                            std::to_string(capacity) + " round=" +
                            std::to_string(round));
                }
            }
            const ServiceStats stats = service.stats();
            EXPECT_EQ(stats.requests, 2 * cases.size());
            if (capacity > 0) {
                EXPECT_EQ(stats.cache_hits, cases.size());
                EXPECT_EQ(stats.transpiles_ok, cases.size());
            }
            EXPECT_EQ(stats.inflight, 0u);
        }
    }
}

TEST(TranspileService, InflightDuplicatesCoalesceToOneTranspile)
{
    // Pin the scheduler's only worker so nothing can start: every
    // duplicate submitted behind the first MUST coalesce — the count is
    // deterministic, not a race we happened to win.
    ServiceOptions sopts;
    sopts.scheduler = std::make_shared<Scheduler>(1);
    TranspileService service(sopts);

    std::atomic<bool> release{false};
    std::atomic<bool> pinned{false};
    Scheduler::JobHandle plug =
        sopts.scheduler->submit(1, [&](std::size_t, int) {
            pinned = true;
            spin_until([&] { return release.load(); });
        });
    ASSERT_TRUE(spin_until([&] { return pinned.load(); }));

    auto backend = shared_montreal();
    const QuantumCircuit circuit = ghz(5);
    TranspileOptions opts;
    opts.router = RoutingAlgorithm::kSabre;

    constexpr int kDuplicates = 6;
    std::vector<TranspileTicket> tickets;
    for (int i = 0; i < kDuplicates; ++i)
        tickets.push_back(service.submit(circuit, backend, opts));

    EXPECT_EQ(tickets[0].source(), TicketSource::kScheduled);
    for (int i = 1; i < kDuplicates; ++i)
        EXPECT_EQ(tickets[i].source(), TicketSource::kCoalesced);
    {
        const ServiceStats stats = service.stats();
        EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kDuplicates));
        EXPECT_EQ(stats.misses, 1u);
        EXPECT_EQ(stats.coalesced,
                  static_cast<std::uint64_t>(kDuplicates - 1));
        EXPECT_EQ(stats.inflight, 1u);
        EXPECT_EQ(stats.transpiles_ok, 0u); // still pinned
    }

    release = true;
    plug.wait();
    SharedTranspileResult first = tickets[0].get();
    for (int i = 1; i < kDuplicates; ++i)
        EXPECT_EQ(tickets[i].get().get(), first.get())
            << "coalesced ticket " << i << " must share the one result";
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.transpiles_ok, 1u);
    EXPECT_EQ(stats.inflight, 0u);
    // And the one result is bit-identical to a fresh direct run.
    DistanceCache dist;
    expect_identical(*first, transpile(circuit, *shared_montreal(), opts, dist),
                     "coalesced vs direct");
}

TEST(TranspileService, LruEvictionIsBoundedAndRecencyOrdered)
{
    ServiceOptions sopts;
    sopts.cache_capacity = 2;
    sopts.scheduler = std::make_shared<Scheduler>(2);
    TranspileService service(sopts);

    auto backend = shared_montreal();
    TranspileOptions opts;
    opts.router = RoutingAlgorithm::kSabre;
    const QuantumCircuit a = ghz(4), b = ghz(5), c = ghz(6), d = qft(4);

    auto source_of = [&](const QuantumCircuit &qc) {
        TranspileTicket t = service.submit(qc, backend, opts);
        t.get();
        return t.source();
    };

    EXPECT_EQ(source_of(a), TicketSource::kScheduled); // cache: [A]
    EXPECT_EQ(source_of(b), TicketSource::kScheduled); // cache: [B A]
    EXPECT_EQ(service.stats().evictions_capacity, 0u);
    EXPECT_EQ(source_of(c), TicketSource::kScheduled); // evicts A: [C B]
    EXPECT_EQ(service.stats().evictions_capacity, 1u);
    EXPECT_EQ(service.stats().cache_size, 2u);         // bounded
    EXPECT_EQ(source_of(a), TicketSource::kScheduled); // evicts B: [A C]
    EXPECT_EQ(source_of(c), TicketSource::kCacheHit);  // touch C: [C A]
    EXPECT_EQ(source_of(d), TicketSource::kScheduled); // evicts A: [D C]
    EXPECT_EQ(source_of(c), TicketSource::kCacheHit);  // C survived (recency)
    EXPECT_EQ(source_of(a), TicketSource::kScheduled); // evicts D: [A C]

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.cache_size, 2u);
    EXPECT_EQ(stats.evictions_capacity, 4u);
    EXPECT_EQ(stats.evictions_invalidated, 0u);
    EXPECT_EQ(stats.cache_hits, 2u);
    EXPECT_EQ(stats.transpiles_ok, 6u);

    service.clear_cache();
    EXPECT_EQ(service.stats().cache_size, 0u);
}

TEST(TranspileService, FailuresPropagateAndAreNeverCached)
{
    ServiceOptions sopts;
    sopts.scheduler = std::make_shared<Scheduler>(2);
    TranspileService service(sopts);

    auto backend = shared_montreal();
    const QuantumCircuit too_wide = ghz(40); // montreal has 27 qubits

    for (int round = 0; round < 2; ++round) {
        TranspileTicket t = service.submit(too_wide, backend, {});
        EXPECT_EQ(t.source(), TicketSource::kScheduled)
            << "failures must not populate the cache (round " << round
            << ")";
        EXPECT_THROW(t.get(), std::exception);
    }
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.transpiles_failed, 2u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.cache_size, 0u);
    EXPECT_EQ(stats.inflight, 0u);

    EXPECT_THROW(service.submit(too_wide, nullptr, {}),
                 std::invalid_argument);
}

TEST(TranspileService, RequestKeySeparatesEveryComponent)
{
    const Backend montreal = montreal_backend();
    const Backend grid = grid_backend(5, 5);
    const QuantumCircuit qc = ghz(5);
    TranspileOptions opts;

    const std::string base = TranspileService::request_key(qc, montreal, opts);
    EXPECT_EQ(TranspileService::request_key(ghz(5), montreal, opts), base);
    EXPECT_NE(TranspileService::request_key(ghz(6), montreal, opts), base);
    EXPECT_NE(TranspileService::request_key(qc, grid, opts), base);
    TranspileOptions other;
    other.seed = 3;
    EXPECT_NE(TranspileService::request_key(qc, montreal, other), base);
}

TEST(TranspileService, BatchThroughServiceKeepsGoldensAndDedupes)
{
    auto backend = shared_montreal();

    // A mixed batch with an embedded failure and two duplicate pairs.
    std::vector<TranspileJob> jobs;
    auto add = [&](const std::string &tag, QuantumCircuit qc, unsigned seed,
                   RoutingAlgorithm router) {
        TranspileJob j;
        j.tag = tag;
        j.circuit = std::move(qc);
        j.backend = backend;
        j.options.router = router;
        j.options.seed = seed;
        jobs.push_back(std::move(j));
    };
    add("qft5", qft(5), 1, RoutingAlgorithm::kNassc);
    add("ghz6", ghz(6), 2, RoutingAlgorithm::kSabre);
    add("qft5-dup", qft(5), 1, RoutingAlgorithm::kNassc); // dup of 0
    add("wide", ghz(40), 1, RoutingAlgorithm::kSabre);    // fails
    add("ghz6-dup", ghz(6), 2, RoutingAlgorithm::kSabre); // dup of 1
    {
        TranspileJob no_backend;
        no_backend.tag = "nobackend";
        no_backend.circuit = ghz(3);
        jobs.push_back(std::move(no_backend));
    }

    // Reference: the direct (service-less) engine.
    BatchOptions direct;
    direct.num_threads = 2;
    const BatchReport want = BatchTranspiler(direct).run(jobs);

    ServiceOptions sopts;
    sopts.scheduler = std::make_shared<Scheduler>(2);
    BatchOptions via;
    via.num_threads = 2;
    via.service = std::make_shared<TranspileService>(sopts);
    const BatchReport got = BatchTranspiler(via).run(jobs);

    ASSERT_EQ(got.results.size(), jobs.size());
    EXPECT_TRUE(got.used_service);
    EXPECT_EQ(got.num_ok, want.num_ok);
    EXPECT_EQ(got.num_failed, want.num_failed);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const JobResult &w = want.results[i];
        const JobResult &g = got.results[i];
        EXPECT_EQ(g.index, i);        // submission order preserved
        EXPECT_EQ(g.tag, w.tag);
        EXPECT_EQ(g.ok, w.ok);
        if (w.ok)
            expect_identical(g.result, w.result, "batch job " + w.tag);
        else
            EXPECT_FALSE(g.error.empty()) << w.tag;
    }
    // Both duplicate pairs dedupe (coalesce or cache-hit, depending on
    // timing); the two distinct successes and the failure each ran once.
    EXPECT_EQ(got.cache_hits + got.coalesced, 2u);
    EXPECT_EQ(got.transpiles, 3u); // qft5, ghz6, wide(failed)
    // Route-pass counters measure work PERFORMED: the direct engine ran
    // both members of each duplicate pair, the service ran one owner —
    // so the direct report shows exactly double.
    EXPECT_EQ(want.full_route_passes, 2 * got.full_route_passes);
    EXPECT_EQ(want.num_route_reused, 2 * got.num_route_reused);
}

TEST(TranspileService, ConcurrentMixedClientsTranspileEachKeyOnce)
{
    ServiceOptions sopts;
    sopts.cache_capacity = 64;
    sopts.scheduler = std::make_shared<Scheduler>(4);
    TranspileService service(sopts);
    auto backend = shared_montreal();

    std::vector<QuantumCircuit> menu = {qft(5), ghz(6), vqe_linear(6),
                                        bernstein_vazirani(6, 0x2a)};
    // References computed up front, single-threaded.
    std::vector<TranspileResult> want;
    for (const QuantumCircuit &qc : menu) {
        TranspileOptions opts;
        opts.router = RoutingAlgorithm::kSabre;
        DistanceCache dist;
        want.push_back(transpile(qc, *backend, opts, dist));
    }

    constexpr int kClients = 4, kRequests = 12;
    std::atomic<int> mismatches{0};
    auto client = [&](int id) {
        for (int r = 0; r < kRequests; ++r) {
            const std::size_t pick =
                static_cast<std::size_t>(id + r) % menu.size();
            TranspileOptions opts;
            opts.router = RoutingAlgorithm::kSabre;
            SharedTranspileResult got =
                service.submit(menu[pick], backend, opts).get();
            if (got->circuit.fingerprint() !=
                    want[pick].circuit.fingerprint() ||
                got->routing_stats.num_swaps !=
                    want[pick].routing_stats.num_swaps)
                mismatches.fetch_add(1);
        }
    };
    std::vector<std::thread> threads;
    for (int t = 0; t < kClients; ++t)
        threads.emplace_back(client, t);
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(mismatches.load(), 0);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.requests,
              static_cast<std::uint64_t>(kClients * kRequests));
    // Dedup guarantee: with capacity above the key count, each distinct
    // key is computed exactly once no matter the interleaving.
    EXPECT_EQ(stats.transpiles_ok, menu.size());
    EXPECT_EQ(stats.cache_hits + stats.coalesced + stats.misses,
              stats.requests);
    EXPECT_EQ(stats.inflight, 0u);
}

TEST(TranspileService, DeadlineDegradesToBestCompletedTrialWithinBudget)
{
    // Deterministic, no sleep race: a failpoint makes the FIRST layout
    // trial overshoot the deadline by construction (sleep 1500 ms vs a
    // 1000 ms budget), so later trials are skipped at their boundary
    // poll no matter how threads are scheduled.  One worker keeps the
    // trials sequential (nested parallel_for runs inline).
    failpoint::disarm_all();
    failpoint::ScopedFailpoint slow("layout.trial", "1*sleep(1500)");

    ServiceOptions sopts;
    sopts.scheduler = std::make_shared<Scheduler>(1);
    TranspileService service(sopts);
    auto backend = shared_montreal();
    const QuantumCircuit circuit = ghz(5);
    TranspileOptions opts;
    opts.router = RoutingAlgorithm::kSabre;
    opts.layout_trials = 4;
    opts.deadline_ms = 1000;

    const auto t0 = std::chrono::steady_clock::now();
    TranspileTicket ticket = service.submit(circuit, backend, opts);
    SharedTranspileResult got = ticket.get();
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0);

    // Degraded but real: at least the slept trial completed, not all
    // four did, and the request settled within 2x its deadline.
    EXPECT_TRUE(got->degraded);
    EXPECT_GE(got->layout_trials_consumed, 1);
    EXPECT_LT(got->layout_trials_consumed, 4);
    EXPECT_LT(elapsed.count(), 2000);

    // Degraded results are NEVER cached: the resubmit computes afresh
    // (the failpoint has burned out, so it now finishes undegraded and
    // DOES enter the cache).
    TranspileTicket again = service.submit(circuit, backend, opts);
    EXPECT_EQ(again.source(), TicketSource::kScheduled);
    SharedTranspileResult full = again.get();
    EXPECT_FALSE(full->degraded);
    EXPECT_EQ(full->layout_trials_consumed, 4);
    TranspileTicket third = service.submit(circuit, backend, opts);
    EXPECT_EQ(third.source(), TicketSource::kCacheHit);
    third.get();
}

TEST(TranspileService, DeadlineWithNothingCompletedThrowsTyped)
{
    // The pre-transpile sleep burns the whole budget before trial 0 can
    // start, so there is no completed trial to degrade to: the request
    // must settle with the TYPED deadline error, counted separately
    // from transpile failures.
    failpoint::disarm_all();
    failpoint::ScopedFailpoint stall("service.transpile", "1*sleep(1500)");

    ServiceOptions sopts;
    sopts.scheduler = std::make_shared<Scheduler>(1);
    TranspileService service(sopts);
    auto backend = shared_montreal();
    TranspileOptions opts;
    opts.router = RoutingAlgorithm::kSabre;
    opts.layout_trials = 1;
    opts.deadline_ms = 1000;

    const auto t0 = std::chrono::steady_clock::now();
    TranspileTicket ticket = service.submit(ghz(5), backend, opts);
    EXPECT_THROW(ticket.get(), TranspileDeadlineExceeded);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0);
    EXPECT_LT(elapsed.count(), 2000);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.deadline_exceeded, 1u);
    EXPECT_EQ(stats.transpiles_failed, 0u); // not an error, a deadline
    EXPECT_EQ(stats.cache_size, 0u);
}

TEST(TranspileService, CoalescedWaiterDeadlineIsPerWaiter)
{
    // One in-flight computation, two waiters: A has no deadline, B has
    // a short one.  B must settle deadline_exceeded without cancelling
    // the computation, and A still gets the (cached) result.  The
    // worker is pinned so B's timeout fires deterministically while the
    // job is still queued.
    failpoint::disarm_all();
    ServiceOptions sopts;
    sopts.cache_capacity = 8;
    sopts.scheduler = std::make_shared<Scheduler>(1);
    TranspileService service(sopts);

    std::atomic<bool> release{false};
    std::atomic<bool> pinned{false};
    Scheduler::JobHandle plug =
        sopts.scheduler->submit(1, [&](std::size_t, int) {
            pinned = true;
            spin_until([&] { return release.load(); });
        });
    ASSERT_TRUE(spin_until([&] { return pinned.load(); }));

    auto backend = shared_montreal();
    const QuantumCircuit circuit = ghz(5);
    TranspileOptions no_deadline;
    no_deadline.router = RoutingAlgorithm::kSabre;
    TranspileOptions short_deadline = no_deadline;
    short_deadline.deadline_ms = 300;

    TranspileTicket a = service.submit(circuit, backend, no_deadline);
    TranspileTicket b = service.submit(circuit, backend, short_deadline);
    EXPECT_EQ(a.source(), TicketSource::kScheduled);
    // deadline_ms is QoS, not identity: B coalesces onto A's key.
    ASSERT_EQ(b.source(), TicketSource::kCoalesced);

    EXPECT_THROW(b.get(), TranspileDeadlineExceeded);
    EXPECT_TRUE(b.deadline_expired());

    release = true;
    plug.wait();
    SharedTranspileResult result = a.get(); // unaffected by B's timeout
    EXPECT_FALSE(result->degraded);
    // ... and the computation B abandoned still populated the cache.
    TranspileTicket warm = service.submit(circuit, backend, no_deadline);
    EXPECT_EQ(warm.source(), TicketSource::kCacheHit);
    warm.get();
}

TEST(TranspileService, QueueCapShedsFreshMissesButNeverDuplicates)
{
    failpoint::disarm_all();
    ServiceOptions sopts;
    sopts.max_queued = 2;
    sopts.scheduler = std::make_shared<Scheduler>(1);
    TranspileService service(sopts);

    std::atomic<bool> release{false};
    std::atomic<bool> pinned{false};
    Scheduler::JobHandle plug =
        sopts.scheduler->submit(1, [&](std::size_t, int) {
            pinned = true;
            spin_until([&] { return release.load(); });
        });
    ASSERT_TRUE(spin_until([&] { return pinned.load(); }));

    auto backend = shared_montreal();
    TranspileOptions opts;
    opts.router = RoutingAlgorithm::kSabre;

    TranspileTicket first = service.submit(ghz(4), backend, opts);
    TranspileTicket second = service.submit(ghz(5), backend, opts);
    // Third DISTINCT request: past the cap, shed immediately.
    EXPECT_THROW(service.submit(ghz(6), backend, opts), TranspileOverloaded);
    EXPECT_EQ(service.stats().shed, 1u);
    // A DUPLICATE of a queued request coalesces — riding an existing
    // computation adds no queue pressure, so it is never shed.
    TranspileTicket dup = service.submit(ghz(4), backend, opts);
    EXPECT_EQ(dup.source(), TicketSource::kCoalesced);

    release = true;
    plug.wait();
    first.get();
    second.get();
    dup.get();
    // Queue drained: fresh misses are admitted again.
    TranspileTicket third = service.submit(ghz(6), backend, opts);
    third.get();
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.shed, 1u);
    EXPECT_EQ(stats.transpiles_ok, 3u);
}

TEST(TranspileService, RequestKeyIgnoresDeadlineButFingerprintDoesNot)
{
    const Backend montreal = montreal_backend();
    const QuantumCircuit qc = ghz(5);
    TranspileOptions base;
    TranspileOptions rushed = base;
    rushed.deadline_ms = 250;

    // Same cache identity (deadline is QoS)...
    EXPECT_EQ(TranspileService::request_key(qc, montreal, base),
              TranspileService::request_key(qc, montreal, rushed));
    // ...but the option fingerprint must still see the field, or two
    // genuinely different configurations would collide elsewhere.
    EXPECT_NE(base.fingerprint(), rushed.fingerprint());
}

TEST(TranspileService, CacheInsertFailpointSuppressesAdmission)
{
    failpoint::disarm_all();
    ServiceOptions sopts;
    sopts.cache_capacity = 8;
    sopts.scheduler = std::make_shared<Scheduler>(2);
    TranspileService service(sopts);
    auto backend = shared_montreal();
    TranspileOptions opts;
    opts.router = RoutingAlgorithm::kSabre;

    {
        failpoint::ScopedFailpoint lossy("service.cache_insert", "trigger");
        service.submit(ghz(5), backend, opts).get();
        TranspileTicket again = service.submit(ghz(5), backend, opts);
        EXPECT_EQ(again.source(), TicketSource::kScheduled)
            << "suppressed insert must force a recompute";
        again.get();
    }
    // Disarmed: the next compute is admitted and the one after hits.
    service.submit(ghz(5), backend, opts).get();
    TranspileTicket warm = service.submit(ghz(5), backend, opts);
    EXPECT_EQ(warm.source(), TicketSource::kCacheHit);
    warm.get();
    EXPECT_EQ(service.stats().cache_size, 1u);
}

} // namespace
} // namespace nassc
