// Cross-cutting property tests: pipeline invariants that must hold for
// every benchmark, topology, router, and seed combination; pass
// idempotence; determinism; serialization round trips.

#include <random>

#include <gtest/gtest.h>

#include "nassc/circuits/library.h"
#include "nassc/ir/qasm.h"
#include "nassc/passes/basis_translation.h"
#include "nassc/passes/cancellation.h"
#include "nassc/passes/collect_blocks.h"
#include "nassc/passes/optimize_1q.h"
#include "nassc/sim/unitary.h"
#include "nassc/sim/verify.h"
#include "nassc/transpile/transpile.h"

namespace nassc {
namespace {

bool
respects_coupling(const QuantumCircuit &qc, const CouplingMap &cm)
{
    for (const Gate &g : qc.gates())
        if (g.num_qubits() == 2 && is_unitary_op(g.kind) &&
            !cm.connected(g.qubits[0], g.qubits[1]))
            return false;
    return true;
}

Backend
backend_by_id(int id)
{
    switch (id) {
      case 0: return linear_backend(25);
      case 1: return grid_backend(5, 5);
      default: return montreal_backend();
    }
}

// ---- full-pipeline invariants over the benchmark suite ----------------------

class PipelineInvariants
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(PipelineInvariants, CouplingBasisAndCounts)
{
    auto [backend_id, router] = GetParam();
    Backend dev = backend_by_id(backend_id);
    for (const BenchmarkCase &bc : table_benchmarks()) {
        // Keep the sweep fast: skip the two deepest circuits here.
        if (bc.name == "sym9_193" || bc.name == "co14_215")
            continue;
        if (bc.circuit.num_qubits() > dev.coupling.num_qubits())
            continue;
        TranspileOptions opts;
        opts.router = static_cast<RoutingAlgorithm>(router);
        TranspileResult res = transpile(bc.circuit, dev, opts);
        EXPECT_TRUE(respects_coupling(res.circuit, dev.coupling))
            << bc.name;
        EXPECT_TRUE(is_basis_circuit(res.circuit)) << bc.name;
        EXPECT_EQ(res.cx_total, res.circuit.cx_count()) << bc.name;
        // Additional CNOTs can never be negative vs the same optimizer
        // without routing.
        TranspileResult base = optimize_only(bc.circuit);
        EXPECT_GE(res.cx_total + 2, base.cx_total) << bc.name;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PipelineInvariants,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(0, 1)));

class SmallEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(SmallEquivalence, VerifiedOnAllTopologies)
{
    int router = GetParam();
    std::vector<std::pair<std::string, QuantumCircuit>> cases = {
        {"grover_n4", grover(4)},
        {"qft_n5", qft(5)},
        {"adder_bits2", cuccaro_adder(2)},
        {"mod5d2", mod5d2_64()},
        {"decod24", decod24_v2_43()},
        {"ghz6", ghz(6)},
        {"qaoa6", qaoa_maxcut(6, 1, 2)},
        {"vqe_lin5", vqe_linear(5, 2, 9)},
    };
    for (int backend_id = 0; backend_id < 3; ++backend_id) {
        Backend dev = backend_by_id(backend_id);
        for (auto &[name, logical] : cases) {
            TranspileOptions opts;
            opts.router = static_cast<RoutingAlgorithm>(router);
            TranspileResult res = transpile(logical, dev, opts);
            EXPECT_TRUE(verify_transpilation(logical, res))
                << name << " on " << dev.name << " router=" << router;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Routers, SmallEquivalence, ::testing::Values(0, 1));

// ---- determinism -------------------------------------------------------------

TEST(Determinism, SameSeedSameResult)
{
    Backend dev = montreal_backend();
    QuantumCircuit logical = qft(10);
    TranspileOptions opts;
    opts.router = RoutingAlgorithm::kNassc;
    opts.seed = 17;
    TranspileResult a = transpile(logical, dev, opts);
    TranspileResult b = transpile(logical, dev, opts);
    EXPECT_EQ(a.cx_total, b.cx_total);
    EXPECT_EQ(a.depth, b.depth);
    EXPECT_EQ(a.initial_l2p, b.initial_l2p);
    ASSERT_EQ(a.circuit.size(), b.circuit.size());
    for (size_t i = 0; i < a.circuit.size(); ++i)
        EXPECT_TRUE(a.circuit.gate(i) == b.circuit.gate(i));
}

TEST(Determinism, DifferentSeedsUsuallyDiffer)
{
    Backend dev = montreal_backend();
    QuantumCircuit logical = qft(10);
    std::set<std::vector<int>> layouts;
    for (unsigned s = 0; s < 4; ++s) {
        TranspileOptions opts;
        opts.seed = s;
        layouts.insert(transpile(logical, dev, opts).initial_l2p);
    }
    EXPECT_GT(layouts.size(), 1u);
}

// ---- pass idempotence --------------------------------------------------------

TEST(Idempotence, Optimize1q)
{
    QuantumCircuit qc = random_su4_circuit(4, 2, 3);
    run_optimize_1q(qc, Basis1q::kZsx);
    QuantumCircuit once = qc;
    run_optimize_1q(qc, Basis1q::kZsx);
    EXPECT_EQ(once.size(), qc.size());
}

TEST(Idempotence, CancellationFixpointStable)
{
    QuantumCircuit qc = decompose_to_2q(grover(5));
    qc = translate_to_basis(qc);
    run_commutative_cancellation_to_fixpoint(qc);
    size_t size = qc.size();
    EXPECT_EQ(run_commutative_cancellation(qc), 0);
    EXPECT_EQ(qc.size(), size);
}

TEST(Idempotence, ConsolidateConvergesQuickly)
{
    // A consolidation round can expose follow-up merges (replacement
    // circuits anchor at the block end), so the pass is run in a loop by
    // the pipeline; it must converge within a few rounds and never grow
    // the CX count.
    QuantumCircuit qc = random_su4_circuit(5, 3, 7);
    QuantumCircuit before = qc;
    int last_cx = qc.cx_count();
    bool stable = false;
    for (int round = 0; round < 4; ++round) {
        ConsolidateStats stats = consolidate_2q_blocks(qc);
        EXPECT_LE(qc.cx_count(), last_cx);
        last_cx = qc.cx_count();
        if (stats.blocks_replaced == 0) {
            stable = true;
            break;
        }
    }
    EXPECT_TRUE(stable);
    EXPECT_TRUE(circuits_equivalent(before, qc));
}

// ---- serialization across the whole library ---------------------------------

TEST(QasmRoundTrip, AllSmallBenchmarks)
{
    std::vector<std::pair<std::string, QuantumCircuit>> cases = {
        {"grover_n4", grover(4)},
        {"bv_n5", bernstein_vazirani(5, 0b1011)},
        {"qft_n4", qft(4)},
        {"qpe_n4", qpe(4)},
        {"adder", cuccaro_adder(1)},
        {"mod5mils", mod5mils_65()},
        {"decod24", decod24_v2_43()},
        {"ghz", ghz(4)},
        {"qaoa", qaoa_maxcut(4, 1, 1)},
    };
    for (auto &[name, qc] : cases) {
        QuantumCircuit back = from_qasm(to_qasm(decompose_to_2q(qc)));
        EXPECT_TRUE(circuits_equivalent(decompose_to_2q(qc), back))
            << name;
    }
}

TEST(QasmRoundTrip, TranspiledOutput)
{
    Backend dev = linear_backend(6);
    TranspileOptions opts;
    TranspileResult res = transpile(qft(5), dev, opts);
    QuantumCircuit back = from_qasm(to_qasm(res.circuit));
    EXPECT_TRUE(circuits_equivalent(res.circuit.without_non_unitary(),
                                    back.without_non_unitary()));
}

// ---- optimizer quality properties --------------------------------------------

TEST(Quality, OptimizeOnlyNeverWorseThanTranslateAlone)
{
    for (auto &bc : fig11_benchmarks()) {
        QuantumCircuit plain = translate_to_basis(
            decompose_to_2q(bc.circuit));
        TranspileResult opt = optimize_only(bc.circuit);
        EXPECT_LE(opt.cx_total, plain.cx_count()) << bc.name;
    }
}

TEST(Quality, RouterOverheadScalesWithDiameter)
{
    // The same circuit on a line vs a full graph: the line must need
    // swaps, the full graph none.
    QuantumCircuit logical = qft(8);
    TranspileOptions opts;
    Backend line = linear_backend(8);
    Backend full = fully_connected_backend(8);
    TranspileResult on_line = transpile(logical, line, opts);
    TranspileResult on_full = transpile(logical, full, opts);
    EXPECT_GT(on_line.routing_stats.num_swaps, 0);
    EXPECT_EQ(on_full.routing_stats.num_swaps, 0);
    EXPECT_GT(on_line.cx_total, on_full.cx_total);
}

TEST(Quality, NasscStatsOnlyWithNassc)
{
    Backend dev = linear_backend(10);
    QuantumCircuit logical = qft(9);
    TranspileOptions sabre;
    sabre.router = RoutingAlgorithm::kSabre;
    TranspileResult rs = transpile(logical, dev, sabre);
    EXPECT_EQ(rs.routing_stats.flagged_swaps, 0);
    EXPECT_EQ(rs.routing_stats.c2q_hits, 0);
    EXPECT_EQ(rs.routing_stats.moved_1q, 0);
}

} // namespace
} // namespace nassc
