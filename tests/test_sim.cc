// Tests for the statevector simulator, the unitary builder, and the
// noise model / Monte-Carlo success-rate protocol.

#include <gtest/gtest.h>

#include "nassc/circuits/library.h"
#include "nassc/sim/noise.h"
#include "nassc/sim/statevector.h"
#include "nassc/sim/unitary.h"
#include "nassc/transpile/transpile.h"

namespace nassc {
namespace {

TEST(Statevector, InitialState)
{
    Statevector sv(3);
    EXPECT_NEAR(std::abs(sv.amplitude(0) - Cx(1.0, 0.0)), 0.0, 1e-15);
    EXPECT_NEAR(sv.norm2(), 1.0, 1e-12);
}

TEST(Statevector, BellState)
{
    Statevector sv(2);
    sv.apply(Gate::one_q(OpKind::kH, 0));
    sv.apply(Gate::two_q(OpKind::kCX, 0, 1));
    EXPECT_NEAR(sv.probability(0b00), 0.5, 1e-12);
    EXPECT_NEAR(sv.probability(0b11), 0.5, 1e-12);
    EXPECT_NEAR(sv.probability(0b01), 0.0, 1e-12);
}

TEST(Statevector, GhzAndParity)
{
    int n = 5;
    Statevector sv(n);
    sv.apply(Gate::one_q(OpKind::kH, 0));
    for (int i = 1; i < n; ++i)
        sv.apply(Gate::two_q(OpKind::kCX, i - 1, i));
    EXPECT_NEAR(sv.probability(0), 0.5, 1e-12);
    EXPECT_NEAR(sv.probability((1u << n) - 1), 0.5, 1e-12);
}

TEST(Statevector, CcxTruthTable)
{
    for (uint64_t in = 0; in < 8; ++in) {
        Statevector sv(3);
        std::vector<Cx> &a = sv.mutable_amplitudes();
        std::fill(a.begin(), a.end(), Cx(0, 0));
        a[in] = 1.0;
        sv.apply(Gate(OpKind::kCCX, {0, 1, 2}));
        uint64_t expect = ((in & 3) == 3) ? in ^ 4 : in;
        EXPECT_NEAR(sv.probability(expect), 1.0, 1e-12) << in;
    }
}

TEST(Statevector, CswapTruthTable)
{
    for (uint64_t in = 0; in < 8; ++in) {
        Statevector sv(3);
        std::vector<Cx> &a = sv.mutable_amplitudes();
        std::fill(a.begin(), a.end(), Cx(0, 0));
        a[in] = 1.0;
        sv.apply(Gate(OpKind::kCSwap, {0, 1, 2}));
        uint64_t expect = in;
        if (in & 1) {
            uint64_t b1 = (in >> 1) & 1, b2 = (in >> 2) & 1;
            expect = (in & 1) | (b2 << 1) | (b1 << 2);
        }
        EXPECT_NEAR(sv.probability(expect), 1.0, 1e-12) << in;
    }
}

TEST(Statevector, MctOnManyQubits)
{
    Statevector sv(6);
    std::vector<Cx> &a = sv.mutable_amplitudes();
    std::fill(a.begin(), a.end(), Cx(0, 0));
    a[0b011111] = 1.0; // all five controls set, target 0
    sv.apply(Gate::mcx({0, 1, 2, 3, 4}, 5));
    EXPECT_NEAR(sv.probability(0b111111), 1.0, 1e-12);
}

TEST(Statevector, PauliInjection)
{
    Statevector sv(1);
    sv.apply_pauli(1, 0); // X
    EXPECT_NEAR(sv.probability(1), 1.0, 1e-12);
    sv.apply_pauli(3, 0); // Z: phase only
    EXPECT_NEAR(sv.probability(1), 1.0, 1e-12);
}

TEST(Statevector, SamplingMatchesDistribution)
{
    Statevector sv(2);
    sv.apply(Gate::one_q(OpKind::kH, 0));
    std::mt19937 rng(3);
    int ones = 0;
    for (int i = 0; i < 4000; ++i)
        ones += sv.sample(rng) & 1;
    EXPECT_NEAR(ones / 4000.0, 0.5, 0.05);
}

TEST(Statevector, FidelityOfIdenticalStates)
{
    Statevector a(3), b(3);
    QuantumCircuit qc = qft(3);
    a.apply_circuit(qc);
    b.apply_circuit(qc);
    EXPECT_NEAR(a.fidelity(b), 1.0, 1e-10);
}

TEST(UnitaryBuilder, MatchesKnownMatrices)
{
    QuantumCircuit qc(1);
    qc.h(0);
    MatN u = unitary_of_circuit(qc);
    EXPECT_NEAR(std::abs(u(0, 0) - Cx(1 / std::sqrt(2.0), 0)), 0.0, 1e-12);

    QuantumCircuit c2(2);
    c2.cx(0, 1);
    MatN ucx = unitary_of_circuit(c2);
    EXPECT_NEAR(std::abs(ucx(3, 1) - Cx(1, 0)), 0.0, 1e-12);
}

TEST(UnitaryBuilder, RejectsHugeCircuits)
{
    QuantumCircuit qc(13);
    EXPECT_THROW(unitary_of_circuit(qc), std::invalid_argument);
}

TEST(EquivalentWithLayout, DetectsPermutation)
{
    // logical cx(0,1) vs physical cx on permuted wires.
    QuantumCircuit logical(2);
    logical.cx(0, 1);
    QuantumCircuit physical(3);
    physical.cx(2, 0);
    EXPECT_TRUE(equivalent_with_layout(logical, physical, {2, 0}, {2, 0}));
    EXPECT_FALSE(equivalent_with_layout(logical, physical, {0, 2}, {0, 2}));
}

TEST(EquivalentWithLayout, TracksSwapMovement)
{
    QuantumCircuit logical(2);
    logical.cx(0, 1);
    // Physical: swap wires then cx reversed, i.e. logical qubits moved.
    QuantumCircuit physical(2);
    physical.swap(0, 1);
    physical.cx(1, 0);
    EXPECT_TRUE(
        equivalent_with_layout(logical, physical, {0, 1}, {1, 0}));
}

TEST(Noise, IdealOutcomeOfDeterministicCircuits)
{
    // BV: outputs the secret on the data wires.
    QuantumCircuit bv = bernstein_vazirani(5, 0b1101);
    uint64_t out = ideal_outcome(bv);
    EXPECT_EQ(out & 0b1111, 0b1101u);

    QuantumCircuit mod5 = mod5mils_65();
    Statevector sv(5);
    sv.apply_circuit(mod5);
    EXPECT_NEAR(sv.probability(ideal_outcome(mod5)), 1.0, 1e-10);
}

TEST(Noise, ZeroNoiseGivesPerfectSuccess)
{
    Backend dev = linear_backend(5);
    // Null calibration -> zero error rates.
    for (auto &e : dev.calibration.error_cx)
        e.second = 0.0;
    for (auto &x : dev.calibration.error_1q)
        x = 0.0;
    for (auto &x : dev.calibration.readout_error)
        x = 0.0;
    NoiseModel nm = NoiseModel::from_backend(dev);

    QuantumCircuit logical = mod5mils_65();
    TranspileOptions opts;
    TranspileResult res = transpile(logical, dev, opts);
    SuccessRate sr = monte_carlo_success(res.circuit, nm, res.final_l2p,
                                         ideal_outcome(logical), 256);
    EXPECT_EQ(sr.hits, 256);
}

TEST(Noise, MoreNoiseLowersSuccess)
{
    Backend dev = linear_backend(5);
    QuantumCircuit logical = mod5mils_65();
    TranspileOptions opts;
    TranspileResult res = transpile(logical, dev, opts);
    uint64_t ideal = ideal_outcome(logical);

    NoiseModel low = NoiseModel::from_backend(dev);
    Backend noisy = dev;
    for (auto &e : noisy.calibration.error_cx)
        e.second *= 5.0;
    for (auto &x : noisy.calibration.readout_error)
        x *= 3.0;
    NoiseModel high = NoiseModel::from_backend(noisy);

    SuccessRate s_low =
        monte_carlo_success(res.circuit, low, res.final_l2p, ideal, 2048, 7);
    SuccessRate s_high =
        monte_carlo_success(res.circuit, high, res.final_l2p, ideal, 2048, 7);
    EXPECT_GT(s_low.rate, s_high.rate);
    EXPECT_GT(s_low.rate, 0.1);
}

TEST(Noise, FewerCxGivesBetterSuccessOnAverage)
{
    // A circuit with strictly more CNOTs through the same noise model
    // should not win: run identity-padded versions.
    Backend dev = linear_backend(4);
    NoiseModel nm = NoiseModel::from_backend(dev);

    QuantumCircuit lean(4);
    lean.h(0);
    lean.cx(0, 1);
    QuantumCircuit fat = lean;
    for (int i = 0; i < 10; ++i) {
        fat.cx(1, 2);
        fat.cx(1, 2);
    }
    uint64_t ideal = ideal_outcome(lean);
    SuccessRate a =
        monte_carlo_success(lean, nm, {0, 1, 2, 3}, ideal, 4096, 5);
    SuccessRate b =
        monte_carlo_success(fat, nm, {0, 1, 2, 3}, ideal, 4096, 5);
    EXPECT_GT(a.rate, b.rate);
}

TEST(Noise, CompressesInactiveWires)
{
    // 27-qubit montreal register, but only a few wires touched: must not
    // throw despite the statevector limit.
    Backend dev = montreal_backend();
    NoiseModel nm = NoiseModel::from_backend(dev);
    QuantumCircuit phys(27);
    phys.h(14);
    phys.cx(14, 16);
    SuccessRate sr = monte_carlo_success(phys, nm, {14, 16}, 0, 128);
    EXPECT_GT(sr.rate, 0.0);
}

} // namespace
} // namespace nassc
