// Tests for the PassManager, the ASAP/ALAP scheduler, and the
// transpilation verifier.

#include <gtest/gtest.h>

#include "nassc/circuits/library.h"
#include "nassc/passes/optimize_1q.h"
#include "nassc/passes/pass_manager.h"
#include "nassc/passes/scheduling.h"
#include "nassc/sim/verify.h"
#include "nassc/transpile/transpile.h"

namespace nassc {
namespace {

TEST(PassManager, RunsPassesInOrder)
{
    PassManager pm;
    std::vector<int> order;
    pm.add("first", [&](QuantumCircuit &) { order.push_back(1); });
    pm.add("second", [&](QuantumCircuit &) { order.push_back(2); });
    QuantumCircuit qc(1);
    pm.run(qc);
    EXPECT_EQ(order, std::vector<int>({1, 2}));
    ASSERT_EQ(pm.reports().size(), 2u);
    EXPECT_EQ(pm.reports()[0].name, "first");
}

TEST(PassManager, ReportsDeltas)
{
    PassManager pm;
    pm.add("opt1q", [](QuantumCircuit &qc) {
        run_optimize_1q(qc, Basis1q::kZsx);
    });
    QuantumCircuit qc(1);
    qc.h(0);
    qc.h(0);
    pm.run(qc);
    EXPECT_EQ(pm.reports()[0].gates_before, 2);
    EXPECT_EQ(pm.reports()[0].gates_after, 0);
}

TEST(PassManager, FixpointStops)
{
    PassManager pm;
    int calls = 0;
    pm.add("noop", [&](QuantumCircuit &) { ++calls; });
    QuantumCircuit qc(1);
    qc.h(0);
    int rounds = pm.run_to_fixpoint(qc, 8);
    EXPECT_EQ(rounds, 1); // no shrink after the first round
    EXPECT_EQ(calls, 1);
}

TEST(Scheduling, SerialChainAddsDurations)
{
    Backend dev = linear_backend(3);
    QuantumCircuit qc(3);
    qc.cx(0, 1);
    qc.cx(1, 2); // depends on wire 1: serial
    DurationModel model;
    Schedule s = schedule_asap(qc, dev, model);
    double d01 = dev.calibration.cx_duration(0, 1);
    double d12 = dev.calibration.cx_duration(1, 2);
    EXPECT_DOUBLE_EQ(s.gates[0].start_ns, 0.0);
    EXPECT_DOUBLE_EQ(s.gates[1].start_ns, d01);
    EXPECT_DOUBLE_EQ(s.total_ns, d01 + d12);
}

TEST(Scheduling, ParallelGatesOverlap)
{
    Backend dev = linear_backend(4);
    QuantumCircuit qc(4);
    qc.cx(0, 1);
    qc.cx(2, 3); // disjoint: parallel
    Schedule s = schedule_asap(qc, dev);
    EXPECT_DOUBLE_EQ(s.gates[1].start_ns, 0.0);
}

TEST(Scheduling, RzIsFree)
{
    Backend dev = linear_backend(2);
    QuantumCircuit qc(2);
    qc.rz(0.5, 0);
    qc.rz(0.5, 0);
    Schedule s = schedule_asap(qc, dev);
    EXPECT_DOUBLE_EQ(s.total_ns, 0.0);
}

TEST(Scheduling, AlapMatchesMakespan)
{
    Backend dev = linear_backend(5);
    QuantumCircuit qc(5);
    qc.h(0);
    qc.cx(0, 1);
    qc.cx(1, 2);
    qc.sx(4);
    Schedule asap = schedule_asap(qc, dev);
    Schedule alap = schedule_alap(qc, dev);
    EXPECT_DOUBLE_EQ(asap.total_ns, alap.total_ns);
    // The stray sx on wire 4 floats to the end under ALAP.
    EXPECT_GT(alap.gates[3].start_ns, asap.gates[3].start_ns);
    // ALAP never starts a gate earlier than ASAP.
    for (size_t i = 0; i < qc.size(); ++i)
        EXPECT_GE(alap.gates[i].start_ns, asap.gates[i].start_ns - 1e-9);
}

TEST(Scheduling, FewerCxShortensSchedule)
{
    Backend dev = montreal_backend();
    QuantumCircuit logical = qft(8);
    TranspileOptions sabre;
    sabre.router = RoutingAlgorithm::kSabre;
    TranspileOptions nassc;
    nassc.router = RoutingAlgorithm::kNassc;
    TranspileResult rs = transpile(logical, dev, sabre);
    TranspileResult rn = transpile(logical, dev, nassc);
    double ts = schedule_asap(rs.circuit, dev).total_ns;
    double tn = schedule_asap(rn.circuit, dev).total_ns;
    // NASSC should not produce a dramatically longer schedule.
    EXPECT_LT(tn, ts * 1.3);
}

TEST(Verify, AcceptsCorrectTranspilationOnMontreal)
{
    Backend dev = montreal_backend();
    QuantumCircuit logical = mod5mils_65();
    TranspileOptions opts;
    TranspileResult res = transpile(logical, dev, opts);
    EXPECT_TRUE(verify_transpilation(logical, res));
}

TEST(Verify, RejectsCorruptedResult)
{
    Backend dev = montreal_backend();
    QuantumCircuit logical = mod5mils_65();
    TranspileOptions opts;
    TranspileResult res = transpile(logical, dev, opts);
    // Corrupt: flip an X on a wire holding a logical qubit.
    res.circuit.x(res.final_l2p[0]);
    EXPECT_FALSE(verify_transpilation(logical, res));
}

TEST(Verify, BothRoutersOnAllBenchSmall)
{
    Backend dev = montreal_backend();
    for (auto &bc : fig11_benchmarks()) {
        for (int r = 0; r < 2; ++r) {
            TranspileOptions opts;
            opts.router = static_cast<RoutingAlgorithm>(r);
            TranspileResult res = transpile(bc.circuit, dev, opts);
            EXPECT_TRUE(verify_transpilation(bc.circuit, res))
                << bc.name << " router=" << r;
        }
    }
}

TEST(NewCircuits, GhzStructure)
{
    QuantumCircuit qc = ghz(5);
    EXPECT_EQ(qc.cx_count(), 4);
    EXPECT_EQ(qc.depth(), 5);
}

TEST(NewCircuits, QaoaDeterministicAndRzzHeavy)
{
    QuantumCircuit a = qaoa_maxcut(8, 2, 3);
    QuantumCircuit b = qaoa_maxcut(8, 2, 3);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_GT(a.count(OpKind::kRZZ), 10);
}

TEST(NewCircuits, VqeLinearCheaperThanFull)
{
    EXPECT_LT(vqe_linear(8).cx_count(), vqe_full(8).cx_count());
}

TEST(NewCircuits, RandomSu4Transpiles)
{
    Backend dev = linear_backend(6);
    QuantumCircuit logical = random_su4_circuit(5, 2, 11);
    TranspileOptions opts;
    TranspileResult res = transpile(logical, dev, opts);
    EXPECT_TRUE(verify_transpilation(logical, res));
}

} // namespace
} // namespace nassc
