// Tests for coupling maps, backend topologies, and distance matrices.

#include <gtest/gtest.h>

#include "nassc/topo/backends.h"
#include "nassc/topo/coupling_map.h"

namespace nassc {
namespace {

TEST(CouplingMap, LineDistances)
{
    Backend b = linear_backend(5);
    const CouplingMap &cm = b.coupling;
    EXPECT_EQ(cm.num_qubits(), 5);
    EXPECT_EQ(cm.edges().size(), 4u);
    EXPECT_TRUE(cm.connected(0, 1));
    EXPECT_FALSE(cm.connected(0, 2));
    EXPECT_EQ(cm.distance(0, 4), 4);
    EXPECT_EQ(cm.diameter(), 4);
    EXPECT_TRUE(cm.is_connected_graph());
}

TEST(CouplingMap, GridStructure)
{
    Backend b = grid_backend(5, 5);
    const CouplingMap &cm = b.coupling;
    EXPECT_EQ(cm.num_qubits(), 25);
    EXPECT_EQ(cm.edges().size(), 40u); // 2*5*4
    EXPECT_EQ(cm.distance(0, 24), 8);  // manhattan corner-to-corner
    EXPECT_EQ(cm.diameter(), 8);
    EXPECT_EQ(cm.neighbors(12).size(), 4u); // center has 4 neighbors
    EXPECT_EQ(cm.neighbors(0).size(), 2u);  // corner has 2
}

TEST(CouplingMap, MontrealHeavyHex)
{
    Backend b = montreal_backend();
    const CouplingMap &cm = b.coupling;
    EXPECT_EQ(cm.num_qubits(), 27);
    EXPECT_EQ(cm.edges().size(), 28u);
    EXPECT_TRUE(cm.is_connected_graph());
    // Heavy-hex degree bounds: 1..3.
    for (int q = 0; q < 27; ++q) {
        EXPECT_GE(cm.neighbors(q).size(), 1u);
        EXPECT_LE(cm.neighbors(q).size(), 3u);
    }
    // Spot-check known couplings of the Falcon lattice.
    EXPECT_TRUE(cm.connected(0, 1));
    EXPECT_TRUE(cm.connected(12, 15));
    EXPECT_TRUE(cm.connected(25, 26));
    EXPECT_FALSE(cm.connected(0, 26));
}

TEST(CouplingMap, FullyConnected)
{
    Backend b = fully_connected_backend(6);
    EXPECT_EQ(b.coupling.edges().size(), 15u);
    EXPECT_EQ(b.coupling.diameter(), 1);
}

TEST(CouplingMap, RejectsBadEdges)
{
    EXPECT_THROW(CouplingMap(3, {{0, 3}}), std::out_of_range);
    EXPECT_THROW(CouplingMap(3, {{1, 1}}), std::invalid_argument);
}

TEST(CouplingMap, DeduplicatesEdges)
{
    CouplingMap cm(3, {{0, 1}, {1, 0}, {0, 1}});
    EXPECT_EQ(cm.edges().size(), 1u);
}

TEST(HeavyHex, RejectsInvalidDistance)
{
    // An even (or tiny) distance has no heavy-hex unit cell; the
    // generator refuses instead of silently emitting a disconnected map.
    EXPECT_THROW(heavy_hex_backend(2), std::invalid_argument);
    EXPECT_THROW(heavy_hex_backend(4), std::invalid_argument);
    EXPECT_THROW(heavy_hex_backend(1), std::invalid_argument);
    EXPECT_THROW(heavy_hex_backend(0), std::invalid_argument);
    EXPECT_THROW(heavy_hex_backend(-3), std::invalid_argument);
}

TEST(HeavyHex, QubitCountsMatchDeviceGenerations)
{
    // d -> d*(2d+1) row qubits + bridge qubits; the counts land next to
    // the published Falcon/Eagle/Osprey/Condor generations.
    EXPECT_EQ(heavy_hex_backend(3).coupling.num_qubits(), 25);
    EXPECT_EQ(heavy_hex_backend(7).coupling.num_qubits(), 129);
    EXPECT_EQ(heavy_hex_backend(13).coupling.num_qubits(), 435);
    EXPECT_EQ(heavy_hex_backend(21).coupling.num_qubits(), 1123);
}

TEST(HeavyHex, ConnectedWithHeavyHexDegrees)
{
    for (int d : {3, 7, 13}) {
        const Backend b = heavy_hex_backend(d);
        EXPECT_TRUE(b.coupling.is_connected_graph()) << "d=" << d;
        for (int q = 0; q < b.coupling.num_qubits(); ++q) {
            EXPECT_GE(b.coupling.neighbors(q).size(), 1u);
            EXPECT_LE(b.coupling.neighbors(q).size(), 3u);
        }
        // Deterministic synthetic calibration covers every edge.
        for (auto e : b.coupling.edges()) {
            EXPECT_GT(b.calibration.cx_error(e.first, e.second), 0.0);
            EXPECT_GT(b.calibration.cx_duration(e.first, e.second), 0.0);
        }
    }
}

TEST(GridOfGrids, RejectsZeroParameters)
{
    EXPECT_THROW(grid_of_grids_backend(0, 2, 3, 3), std::invalid_argument);
    EXPECT_THROW(grid_of_grids_backend(2, 0, 3, 3), std::invalid_argument);
    EXPECT_THROW(grid_of_grids_backend(2, 2, 0, 3), std::invalid_argument);
    EXPECT_THROW(grid_of_grids_backend(2, 2, 3, 0), std::invalid_argument);
    EXPECT_THROW(grid_of_grids_backend(-1, 2, 3, 3),
                 std::invalid_argument);
}

TEST(GridOfGrids, TiledStructure)
{
    const Backend b = grid_of_grids_backend(2, 3, 4, 4);
    EXPECT_EQ(b.coupling.num_qubits(), 2 * 3 * 4 * 4);
    EXPECT_TRUE(b.coupling.is_connected_graph());
    // Edge count: per-tile grid edges + one bridge per adjacent tile
    // pair: 6 tiles * 24 in-tile + (2*2 + 1*3) horizontal/vertical
    // bridges.
    EXPECT_EQ(b.coupling.edges().size(), 6u * 24u + 4u + 3u);
}

TEST(CouplingMap, SparseModeMatchesDenseTwin)
{
    // Same edges through the dense (adjacency matrix + eager BFS table)
    // and sparse (on-demand BFS) code paths must agree on every query.
    const Backend seed = grid_backend(4, 5);
    std::vector<std::pair<int, int>> edges(seed.coupling.edges());
    const int n = seed.coupling.num_qubits();
    const CouplingMap dense(n, edges);
    const CouplingMap sparse(n, edges, /*dense_limit=*/4);
    ASSERT_TRUE(dense.has_dense_distances());
    ASSERT_FALSE(sparse.has_dense_distances());

    EXPECT_EQ(sparse.diameter(), dense.diameter());
    EXPECT_EQ(sparse.is_connected_graph(), dense.is_connected_graph());
    for (int i = 0; i < n; ++i) {
        EXPECT_EQ(sparse.hop_row(i), dense.hop_row(i));
        for (int j = 0; j < n; ++j) {
            EXPECT_EQ(sparse.connected(i, j), dense.connected(i, j));
            EXPECT_EQ(sparse.distance(i, j), dense.distance(i, j));
        }
    }
    // The all-pairs table is a dense-only affordance.
    EXPECT_THROW(sparse.distance_matrix(), std::logic_error);
    // The double-precision matrix still materializes (per-row BFS).
    const DistanceMatrix dd = dense.distance_matrix_double();
    const DistanceMatrix sd = sparse.distance_matrix_double();
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            EXPECT_EQ(sd(i, j), dd(i, j));
}

TEST(Calibration, DeterministicAndInRange)
{
    Backend a = montreal_backend();
    Backend b = montreal_backend();
    for (auto e : a.coupling.edges()) {
        double err = a.calibration.cx_error(e.first, e.second);
        EXPECT_DOUBLE_EQ(err, b.calibration.cx_error(e.first, e.second));
        EXPECT_GE(err, 0.005);
        EXPECT_LE(err, 0.03);
        // Symmetric lookup.
        EXPECT_DOUBLE_EQ(err, a.calibration.cx_error(e.second, e.first));
    }
    for (int q = 0; q < 27; ++q) {
        EXPECT_GT(a.calibration.readout_error[q], 0.0);
        EXPECT_LT(a.calibration.readout_error[q], 0.05);
    }
}

TEST(Distance, HopMatrixMatchesCoupling)
{
    Backend b = grid_backend(3, 3);
    auto d = hop_distance(b.coupling);
    for (int i = 0; i < 9; ++i)
        for (int j = 0; j < 9; ++j)
            EXPECT_DOUBLE_EQ(d[i][j], b.coupling.distance(i, j));
}

TEST(Distance, NoiseAwareReducesToHopsWhenAlphaDistance)
{
    Backend b = linear_backend(6);
    auto d = noise_aware_distance(b, 0.0, 0.0, 1.0);
    for (int i = 0; i < 6; ++i)
        for (int j = 0; j < 6; ++j)
            EXPECT_NEAR(d[i][j], b.coupling.distance(i, j), 1e-9);
}

TEST(Distance, NoiseAwarePrefersGoodEdges)
{
    // Force one terrible edge in a 3-cycle; the noise-aware distance must
    // route around it.
    Backend b;
    b.name = "tri";
    b.coupling = CouplingMap(3, {{0, 1}, {1, 2}, {0, 2}});
    b.calibration.error_1q = {1e-4, 1e-4, 1e-4};
    b.calibration.readout_error = {0.01, 0.01, 0.01};
    b.calibration.error_cx[{0, 1}] = 0.5; // terrible
    b.calibration.error_cx[{1, 2}] = 0.001;
    b.calibration.error_cx[{0, 2}] = 0.001;
    b.calibration.duration_cx[{0, 1}] = 400;
    b.calibration.duration_cx[{1, 2}] = 400;
    b.calibration.duration_cx[{0, 2}] = 400;
    // With the error term dominating, the two-hop detour through the good
    // edges beats the direct terrible edge.
    auto d = noise_aware_distance(b, 1.0, 0.0, 0.0);
    EXPECT_LT(d[0][1], 0.99); // detour used, not the weight-1.0 edge
    EXPECT_NEAR(d[0][1], d[0][2] + d[2][1], 1e-9);
    // With pure hop weighting the direct edge wins again.
    auto dh = noise_aware_distance(b, 0.0, 0.0, 1.0);
    EXPECT_NEAR(dh[0][1], 1.0, 1e-9);
}

TEST(Distance, NoiseAwareSymmetric)
{
    Backend b = montreal_backend();
    auto d = noise_aware_distance(b);
    for (int i = 0; i < 27; ++i) {
        EXPECT_DOUBLE_EQ(d[i][i], 0.0);
        for (int j = 0; j < 27; ++j)
            EXPECT_DOUBLE_EQ(d[i][j], d[j][i]);
    }
}

} // namespace
} // namespace nassc
