// Tests for the shared worker pool (service/thread_pool.h): index
// coverage, worker-id contract, the nested-parallelism guard,
// deterministic exception selection, and failed-index isolation.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "nassc/service/thread_pool.h"

namespace nassc {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    for (std::size_t count : {0u, 1u, 3u, 64u, 1000u}) {
        std::vector<std::atomic<int>> hits(count);
        pool.parallel_for(count, [&](std::size_t i, int) {
            hits[i].fetch_add(1);
        });
        for (std::size_t i = 0; i < count; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, WorkerIdsStayWithinCapAndCallerParticipates)
{
    ThreadPool pool(4);
    const int cap = 3;
    std::mutex m;
    std::set<int> workers;
    std::set<std::thread::id> threads;
    const std::thread::id caller = std::this_thread::get_id();
    std::atomic<bool> caller_participated{false};

    pool.parallel_for(
        256,
        [&](std::size_t, int worker) {
            if (std::this_thread::get_id() == caller) {
                caller_participated = true;
            } else {
                // Hold pool workers until the caller has claimed an
                // index: under slow runtimes (TSan) the pool could
                // otherwise drain all 256 indices before the caller's
                // first claim, making participation a coin toss.  A
                // deadline keeps a broken contract a failure, not a
                // hang.
                auto deadline = std::chrono::steady_clock::now() +
                                std::chrono::seconds(5);
                while (!caller_participated.load() &&
                       std::chrono::steady_clock::now() < deadline)
                    std::this_thread::yield();
            }
            std::lock_guard<std::mutex> lk(m);
            workers.insert(worker);
            threads.insert(std::this_thread::get_id());
        },
        cap);

    for (int w : workers) {
        EXPECT_GE(w, 0);
        EXPECT_LT(w, 4 + 1); // stable pool-thread ids, caller is 0
    }
    EXPECT_LE(static_cast<int>(threads.size()), cap);
    // The caller always pulls indices too (it is worker slot 0).
    EXPECT_TRUE(caller_participated.load());
}

TEST(ThreadPool, MaxWorkersOneRunsInlineOnCaller)
{
    ThreadPool pool(4);
    const std::thread::id caller = std::this_thread::get_id();
    std::atomic<int> off_thread{0};
    pool.parallel_for(
        32,
        [&](std::size_t, int worker) {
            if (std::this_thread::get_id() != caller || worker != 0)
                off_thread.fetch_add(1);
        },
        /*max_workers=*/1);
    EXPECT_EQ(off_thread.load(), 0);
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    ThreadPool pool(4);
    std::atomic<int> inner_total{0};
    std::atomic<int> nested_off_thread{0};

    EXPECT_FALSE(ThreadPool::in_task());
    pool.parallel_for(8, [&](std::size_t, int) {
        EXPECT_TRUE(ThreadPool::in_task());
        const std::thread::id me = std::this_thread::get_id();
        // The guard: an inner parallel_for from inside a task must run
        // serially on the issuing thread (worker slot 0), not deadlock
        // or fan out again.
        pool.parallel_for(16, [&](std::size_t, int worker) {
            inner_total.fetch_add(1);
            if (std::this_thread::get_id() != me || worker != 0)
                nested_off_thread.fetch_add(1);
        });
    });
    EXPECT_FALSE(ThreadPool::in_task());
    EXPECT_EQ(inner_total.load(), 8 * 16);
    EXPECT_EQ(nested_off_thread.load(), 0);
}

TEST(ThreadPool, LowestIndexExceptionWinsAndSiblingsStillRun)
{
    for (int threads : {1, 4}) {
        ThreadPool pool(threads);
        std::vector<std::atomic<int>> done(64);
        try {
            pool.parallel_for(64, [&](std::size_t i, int) {
                if (i == 7 || i == 23 || i == 41)
                    throw std::runtime_error("boom " + std::to_string(i));
                done[i].fetch_add(1);
            });
            FAIL() << "expected an exception (threads=" << threads << ")";
        } catch (const std::runtime_error &e) {
            // Deterministic across thread counts: always the lowest index.
            EXPECT_STREQ(e.what(), "boom 7");
        }
        for (std::size_t i = 0; i < 64; ++i) {
            if (i == 7 || i == 23 || i == 41)
                continue;
            EXPECT_EQ(done[i].load(), 1) << "index " << i;
        }
    }
}

TEST(ThreadPool, ReusableAcrossManyLoops)
{
    ThreadPool pool(2);
    std::atomic<long> total{0};
    for (int round = 0; round < 50; ++round)
        pool.parallel_for(round, [&](std::size_t i, int) {
            total.fetch_add(static_cast<long>(i) + 1);
        });
    long expect = 0;
    for (int round = 0; round < 50; ++round)
        expect += static_cast<long>(round) * (round + 1) / 2;
    EXPECT_EQ(total.load(), expect);
}

TEST(ThreadPool, SharedPoolIsAProcessSingleton)
{
    ThreadPool &a = ThreadPool::shared();
    ThreadPool &b = ThreadPool::shared();
    EXPECT_EQ(&a, &b);
    EXPECT_GE(a.num_threads(), 1);
    std::atomic<int> n{0};
    a.parallel_for(10, [&](std::size_t, int) { n.fetch_add(1); });
    EXPECT_EQ(n.load(), 10);
}

TEST(ThreadPool, ConcurrentSubmittersSerializeSafely)
{
    // Two non-pool threads submitting to one pool at once: submissions
    // serialize on the pool, both complete, no lost indices.
    ThreadPool pool(2);
    std::atomic<int> total{0};
    auto submit = [&] {
        for (int r = 0; r < 20; ++r)
            pool.parallel_for(32, [&](std::size_t, int) {
                total.fetch_add(1);
            });
    };
    std::thread t1(submit), t2(submit);
    t1.join();
    t2.join();
    EXPECT_EQ(total.load(), 2 * 20 * 32);
}

} // namespace
} // namespace nassc
