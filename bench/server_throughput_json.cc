// nasscd daemon throughput sweep, emitting a JSON record per
// (transport, clients, shards) cell:
//
//   [{"workload": "serve_mix", "transport": "unix", "clients": 4,
//     "shards": 1, "repeat": 2, "requests": 64, "distinct": 8,
//     "wall_ms": 512.0, "requests_per_s": 125.0, "hits": 40,
//     "coalesced": 16, "transpiles": 8}, ...]
//
// Each cell starts an in-process NasscServer on a fresh socket and
// fires a duplicated QASM workload from `clients` concurrent
// connections — the full wire path (framing, parse, submit_qasm, ticket
// wait, QASM response) rather than the in-process service path that
// bench/service_throughput_json.cc measures; the difference between the
// two files is the protocol overhead.  shards=3 cells (unix transport
// only — the shard fabric is unix-domain) run the SHARDED topology: a
// front-door server forwarding through a ShardRouter to three worker
// servers, so the shards=1 vs shards=3 delta is the price of the extra
// hop.  `transpiles` is deterministic (dedup: one execution per
// distinct key per owning shard); the hit/coalesce split depends on
// arrival timing and is informational.
//
// The `bench_server` CMake/CTest target runs this and CI uploads the
// resulting BENCH_server.json (advisory; no gate — requests_per_s
// drift is reported informationally by bench/compare_bench_json.py,
// transpiles drift exactly).
//
// After the sweep the array gains one row per span histogram
// ({"histogram": "queue_wait_us", "count": …, "p50_us": …,
// "p99_us": …}, whole-sweep aggregate from the process-global
// MetricsRegistry) — compare_bench_json.py reports p50/p99 drift on
// these informationally — and the full Prometheus text exposition is
// written next to the JSON (--metrics-out, default
// BENCH_metrics.prom) so CI can upload a scraped snapshot artifact.
//
// Usage: server_throughput_json [--out PATH] [--metrics-out PATH]
//                               [--workers N] [--repeat N]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "nassc/circuits/library.h"
#include "nassc/ir/qasm.h"
#include "nassc/obs/metrics.h"
#include "nassc/serve/client.h"
#include "nassc/serve/server.h"
#include "nassc/serve/shard_router.h"

using namespace nassc;

namespace {

struct WireRequest
{
    std::string qasm;
    std::vector<std::pair<std::string, std::string>> options;
};

/** Mixed wire workload: routing-relevant but CI-fast circuits. */
std::vector<WireRequest>
serve_mix()
{
    std::vector<QuantumCircuit> circuits = {
        qft(6),
        ghz(10),
        bernstein_vazirani(8, 0x95),
        vqe_linear(6),
    };
    std::vector<WireRequest> requests;
    for (const QuantumCircuit &qc : circuits)
        for (const char *router : {"sabre", "nassc"}) {
            WireRequest r;
            r.qasm = to_qasm(qc);
            r.options = {{"router", router}, {"seed", "0"}};
            requests.push_back(std::move(r));
        }
    return requests;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_server.json";
    std::string metrics_path = "BENCH_metrics.prom";
    int worker_threads = 4;
    int repeat = 2;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
            out_path = argv[++i];
        else if (!std::strcmp(argv[i], "--metrics-out") && i + 1 < argc)
            metrics_path = argv[++i];
        else if (!std::strcmp(argv[i], "--workers") && i + 1 < argc)
            worker_threads = std::atoi(argv[++i]);
        else if (!std::strcmp(argv[i], "--repeat") && i + 1 < argc)
            repeat = std::atoi(argv[++i]);
    }
    if (worker_threads < 1)
        worker_threads = 1;
    if (repeat < 1)
        repeat = 1;

    const std::vector<WireRequest> distinct = serve_mix();

    std::string json = "[\n";
    bool first = true;
    for (const char *transport : {"unix", "tcp"}) {
        for (int clients : {1, 4}) {
            for (int shards : {1, 3}) {
                // The shard fabric is unix-domain; a TCP front over a
                // sharded fleet adds nothing the unix cell doesn't show.
                if (shards > 1 && std::strcmp(transport, "unix") != 0)
                    continue;

                const std::string sock = "/tmp/nassc_bench_" +
                                         std::to_string(::getpid()) +
                                         ".sock";
                std::vector<std::unique_ptr<NasscServer>> workers;
                std::shared_ptr<ShardRouter> router;
                ServerOptions options;
                if (shards > 1) {
                    ShardRouterOptions ropts;
                    for (int s = 0; s < shards; ++s) {
                        ServerOptions wopts;
                        wopts.service.num_threads = worker_threads;
                        wopts.unix_path =
                            sock + ".shard" + std::to_string(s);
                        workers.push_back(
                            std::make_unique<NasscServer>(wopts));
                        workers.back()->start();
                        ServeEndpoint endpoint;
                        endpoint.unix_path = workers.back()->unix_path();
                        ropts.shards.push_back(endpoint);
                    }
                    router =
                        std::make_shared<ShardRouter>(std::move(ropts));
                    options.shard_router = router;
                } else {
                    options.service.num_threads = worker_threads;
                }
                if (!std::strcmp(transport, "unix"))
                    options.unix_path = sock;
                else
                    options.tcp_port = 0; // ephemeral
                NasscServer server(options);
                server.start();

                auto connect = [&] {
                    if (!std::strcmp(transport, "unix"))
                        return ServeClient::connect_unix(sock);
                    return ServeClient::connect_tcp("127.0.0.1",
                                                    server.tcp_port());
                };

                // Client c replays the menu `repeat` times, rotated by
                // its id so concurrent clients overlap on the same keys.
                const std::size_t per_client = distinct.size() * repeat;
                auto run_client = [&](int id) {
                    ServeClient client = connect();
                    for (int r = 0; r < repeat; ++r)
                        for (std::size_t k = 0; k < distinct.size(); ++k) {
                            const WireRequest &req =
                                distinct[(k + id) % distinct.size()];
                            client.transpile_qasm(req.qasm,
                                                  "ibmq_montreal",
                                                  req.options);
                        }
                };

                auto t0 = std::chrono::steady_clock::now();
                std::vector<std::thread> threads;
                for (int c = 1; c < clients; ++c)
                    threads.emplace_back(run_client, c);
                run_client(0);
                for (std::thread &t : threads)
                    t.join();
                auto t1 = std::chrono::steady_clock::now();

                // Sharded cells sum the worker services (the front has
                // no service stats of its own — it only forwards).
                ServiceStats stats;
                if (shards > 1) {
                    for (auto &worker : workers) {
                        const ServiceStats s = worker->service().stats();
                        stats.cache_hits += s.cache_hits;
                        stats.coalesced += s.coalesced;
                        stats.transpiles_ok += s.transpiles_ok;
                        stats.transpiles_failed += s.transpiles_failed;
                    }
                } else {
                    stats = server.service().stats();
                }
                server.stop();
                if (router)
                    router->close_pools();
                for (auto &worker : workers)
                    worker->stop();

                const double wall_ms =
                    std::chrono::duration<double, std::milli>(t1 - t0)
                        .count();
                const std::size_t requests =
                    per_client * static_cast<std::size_t>(clients);

                char row[400];
                std::snprintf(
                    row, sizeof(row),
                    "  {\"workload\": \"serve_mix\", \"transport\": "
                    "\"%s\", \"clients\": %d, \"shards\": %d, "
                    "\"repeat\": %d, \"requests\": %zu, "
                    "\"distinct\": %zu, \"wall_ms\": %.1f, "
                    "\"requests_per_s\": %.1f, \"hits\": %llu, "
                    "\"coalesced\": %llu, \"transpiles\": %llu}",
                    transport, clients, shards, repeat, requests,
                    distinct.size(), wall_ms,
                    1000.0 * static_cast<double>(requests) / wall_ms,
                    static_cast<unsigned long long>(stats.cache_hits),
                    static_cast<unsigned long long>(stats.coalesced),
                    static_cast<unsigned long long>(
                        stats.transpiles_ok + stats.transpiles_failed));
                if (!first)
                    json += ",\n";
                json += row;
                first = false;
                std::printf(
                    "%s clients=%d shards=%d: %zu requests in %.1f ms "
                    "(%.1f req/s; %llu hits, %llu coalesced, "
                    "%llu transpiled)\n",
                    transport, clients, shards, requests, wall_ms,
                    1000.0 * static_cast<double>(requests) / wall_ms,
                    static_cast<unsigned long long>(stats.cache_hits),
                    static_cast<unsigned long long>(stats.coalesced),
                    static_cast<unsigned long long>(stats.transpiles_ok +
                                                    stats.transpiles_failed));
            }
        }
    }
    // Whole-sweep span histograms: every cell above ran in THIS
    // process, so the global registry holds the aggregate of all of
    // them.  One row per instrument, shape-distinguished from the
    // throughput cells by the "histogram" key (no "transport" key —
    // compare_bench_json.py keys on that).
    {
        obs::StackMetrics &om = obs::StackMetrics::get();
        const std::pair<const char *, const obs::Histogram *> hists[] = {
            {"queue_wait_us", &om.queue_wait_us},
            {"routing_us", &om.routing_us},
            {"layout_us", &om.layout_us},
            {"transpile_us", &om.transpile_us},
            {"request_us", &om.request_us},
        };
        for (const auto &h : hists) {
            const obs::HistogramSnapshot snap = h.second->snapshot();
            char row[240];
            std::snprintf(
                row, sizeof(row),
                "  {\"workload\": \"serve_mix\", \"histogram\": \"%s\", "
                "\"count\": %llu, \"sum_us\": %llu, \"p50_us\": %llu, "
                "\"p99_us\": %llu}",
                h.first, static_cast<unsigned long long>(snap.count),
                static_cast<unsigned long long>(snap.sum),
                static_cast<unsigned long long>(snap.quantile_us(0.50)),
                static_cast<unsigned long long>(snap.quantile_us(0.99)));
            if (!first)
                json += ",\n";
            json += row;
            first = false;
            std::printf("%s: count=%llu p50=%llu us p99=%llu us\n", h.first,
                        static_cast<unsigned long long>(snap.count),
                        static_cast<unsigned long long>(snap.quantile_us(0.50)),
                        static_cast<unsigned long long>(snap.quantile_us(0.99)));
        }
    }
    json += "\n]\n";

    std::ofstream f(out_path);
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    f << json;
    std::printf("json written to %s\n", out_path.c_str());

    // The scraped-snapshot artifact: exactly what the `metrics` verb
    // would have returned from this process at the end of the sweep.
    std::ofstream mf(metrics_path);
    if (!mf) {
        std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
        return 1;
    }
    mf << obs::MetricsRegistry::global().render();
    std::printf("metrics snapshot written to %s\n", metrics_path.c_str());
    return 0;
}
