// Reproduces the Sec. III motivation measurement: the fraction of the
// SWAP gates a SABRE-routed circuit that are later modified by the
// optimizer — via two-qubit block resynthesis and via commutative gate
// cancellation.  The paper reports 20.7% (resynthesis) and 40.3%
// (cancellation) for a 10-qubit Grover benchmark on a 4x4 grid.

#include "bench_common.h"
#include "nassc/passes/basis_translation.h"
#include "nassc/passes/cancellation.h"
#include "nassc/passes/collect_blocks.h"
#include "nassc/passes/decompose_swaps.h"
#include "nassc/passes/optimize_1q.h"

using namespace nassc;
using namespace nassc::bench;

int
main(int argc, char **argv)
{
    Args args = parse_args(argc, argv);
    Backend dev = grid_backend(4, 4);
    QuantumCircuit logical = grover(10);

    double resynth_frac = 0.0, cancel_frac = 0.0, swaps_avg = 0.0;

    // Seed-invariant inputs hoisted out of the per-seed loop: the
    // prepared circuit and the distance matrix are identical for every
    // repetition; only the layout (seeded) varies.
    QuantumCircuit c = decompose_to_2q(logical);
    run_optimize_1q(c, Basis1q::kUGate);
    consolidate_2q_blocks(c, Basis1q::kUGate);
    const auto dist = hop_distance(dev.coupling);

    for (int s = 0; s < args.seeds; ++s) {
        RoutingOptions ropts;
        ropts.seed = static_cast<unsigned>(s);
        Layout init = sabre_initial_layout(c, dev.coupling, dist, ropts);
        RoutingResult routed =
            route_circuit(c, dev.coupling, dist, init, ropts);

        int swaps = routed.stats.num_swaps;
        swaps_avg += swaps;

        // (a) SWAPs absorbed when blocks (including SWAP gates) are
        // resynthesized, exactly what Collect2qBlocks+UnitarySynthesis
        // does to the routed circuit.
        QuantumCircuit resynth = routed.circuit;
        consolidate_2q_blocks(resynth, Basis1q::kUGate);
        int absorbed = swaps - resynth.count(OpKind::kSwap);
        resynth_frac += swaps > 0 ? double(absorbed) / swaps : 0.0;

        // (b) SWAP CNOTs removed by commutative cancellation after the
        // fixed decomposition (each cancelled pair touches a SWAP CNOT).
        QuantumCircuit fixed = routed.circuit;
        decompose_swaps(fixed, false);
        fixed = translate_to_basis(fixed);
        run_optimize_1q(fixed, Basis1q::kZsx);
        int cx_before = fixed.cx_count();
        run_commutative_cancellation_to_fixpoint(fixed);
        int removed_pairs = (cx_before - fixed.cx_count()) / 2;
        cancel_frac += swaps > 0 ? double(removed_pairs) / swaps : 0.0;
    }
    resynth_frac = 100.0 * resynth_frac / args.seeds;
    cancel_frac = 100.0 * cancel_frac / args.seeds;
    swaps_avg /= args.seeds;

    std::printf("Sec. III motivation: grover_n10 on 4x4 grid, SABRE "
                "(%d seeds)\n\n", args.seeds);
    std::printf("average SWAPs inserted:                 %.1f\n", swaps_avg);
    std::printf("SWAPs absorbed by block resynthesis:    %.1f%%  "
                "(paper: 20.7%%)\n", resynth_frac);
    std::printf("SWAPs touched by gate cancellation:     %.1f%%  "
                "(paper: 40.3%%)\n", cancel_frac);
    std::printf("\nReading: a large share of SABRE's SWAPs are modified "
                "by later optimization,\nso minimizing SWAP count alone "
                "is not minimizing the real CNOT cost.\n");
    return 0;
}
