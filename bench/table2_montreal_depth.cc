// Reproduces Table II: circuit depth of Qiskit+NASSC vs Qiskit+SABRE on
// the ibmq_montreal coupling map (paper Sec. VI-A).

#include "bench_common.h"

using namespace nassc;
using namespace nassc::bench;

int
main(int argc, char **argv)
{
    Args args = parse_args(argc, argv);
    Backend dev = montreal_backend();

    std::printf("Table II: circuit depth, SABRE vs NASSC on %s "
                "(%d seeds/cell)\n\n",
                dev.name.c_str(), args.seeds);
    std::printf("%-15s %4s %9s | %9s %9s | %9s %9s | %9s %9s\n", "name",
                "#q", "Dorig", "Dsabre", "Dadd", "Dnassc", "Dadd",
                "dTotal", "dAdd");

    std::vector<std::string> csv;
    csv.push_back("name,qubits,depth_orig,depth_sabre,depth_add_sabre,"
                  "depth_nassc,depth_add_nassc,delta_total,delta_add");

    GeoMean gm_total, gm_add;

    for (const BenchmarkCase &bc : table_benchmarks()) {
        TranspileResult base =
            TranspileContext::global().optimize_only(bc.circuit);
        Cell sabre = run_cell(bc.circuit, dev, RoutingAlgorithm::kSabre,
                              args.seeds, base.cx_total, base.depth);
        Cell nassc = run_cell(bc.circuit, dev, RoutingAlgorithm::kNassc,
                              args.seeds, base.cx_total, base.depth);

        double d_total =
            100.0 * (1.0 - nassc.depth_total / sabre.depth_total);
        double d_add =
            sabre.depth_add > 0.0
                ? 100.0 * (1.0 - nassc.depth_add / sabre.depth_add)
                : 0.0;
        gm_total.add_ratio(nassc.depth_total, sabre.depth_total);
        gm_add.add_ratio(nassc.depth_add, sabre.depth_add);

        std::printf("%-15s %4d %9d | %9.1f %9.1f | %9.1f %9.1f | %8.2f%% "
                    "%8.2f%%\n",
                    bc.name.c_str(), bc.circuit.num_qubits(), base.depth,
                    sabre.depth_total, sabre.depth_add, nassc.depth_total,
                    nassc.depth_add, d_total, d_add);

        char line[384];
        std::snprintf(line, sizeof(line),
                      "%s,%d,%d,%.1f,%.1f,%.1f,%.1f,%.2f,%.2f",
                      bc.name.c_str(), bc.circuit.num_qubits(), base.depth,
                      sabre.depth_total, sabre.depth_add, nassc.depth_total,
                      nassc.depth_add, d_total, d_add);
        csv.push_back(line);
        std::fflush(stdout);
    }

    std::printf("\nGeometric mean ddepth_total: %.2f%%  (paper: 6.05%%)\n",
                gm_total.reduction_percent());
    std::printf("Geometric mean ddepth_add:   %.2f%%  (paper: 7.61%%)\n",
                gm_add.reduction_percent());

    write_csv(args.csv, csv);
    return 0;
}
