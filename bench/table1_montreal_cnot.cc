// Reproduces Table I: additional CNOT gates of Qiskit+NASSC vs
// Qiskit+SABRE on the ibmq_montreal coupling map, plus transpile-time
// ratios (paper Sec. VI-A / VI-B).
//
// The whole sweep — every (benchmark, router, seed) triple — is queued
// as one batch on the parallel BatchTranspiler, so all cells share a
// single cached distance matrix and saturate the machine.

#include "bench_common.h"

using namespace nassc;
using namespace nassc::bench;

int
main(int argc, char **argv)
{
    Args args = parse_args(argc, argv);
    auto dev = std::make_shared<Backend>(montreal_backend());

    std::printf("Table I: additional CNOTs, SABRE vs NASSC on %s "
                "(%d seeds/cell)\n\n",
                dev->name.c_str(), args.seeds);
    std::printf("%-15s %4s %9s | %9s %9s %8s | %9s %9s %8s | %8s %8s %7s\n",
                "name", "#q", "CXorig", "CXsabre", "CXadd", "t(s)",
                "CXnassc", "CXadd", "t(s)", "dTotal", "dAdd", "t_ratio");

    std::vector<std::string> csv;
    csv.push_back("name,qubits,cx_orig,cx_sabre,cx_add_sabre,t_sabre,"
                  "cx_nassc,cx_add_nassc,t_nassc,delta_total,delta_add,"
                  "time_ratio");

    const std::vector<BenchmarkCase> benchmarks = table_benchmarks();

    // Queue everything, then run one batch.
    std::vector<TranspileJob> jobs;
    for (const BenchmarkCase &bc : benchmarks) {
        queue_cell_jobs(jobs, bc.name + "/sabre", bc.circuit, dev,
                        RoutingAlgorithm::kSabre, args.seeds);
        queue_cell_jobs(jobs, bc.name + "/nassc", bc.circuit, dev,
                        RoutingAlgorithm::kNassc, args.seeds);
    }
    BatchTranspiler engine(args.batch());
    BatchReport report = engine.run(jobs);

    GeoMean gm_total, gm_add;
    double time_ratio_log = 0.0;
    int time_n = 0;

    std::size_t idx = 0;
    for (const BenchmarkCase &bc : benchmarks) {
        TranspileResult base =
            TranspileContext::global().optimize_only(bc.circuit);
        Cell sabre = cell_from_results(report.results, idx, args.seeds,
                                       base.cx_total, base.depth);
        Cell nassc = cell_from_results(report.results, idx, args.seeds,
                                       base.cx_total, base.depth);

        double d_total = 100.0 * (1.0 - nassc.cx_total / sabre.cx_total);
        double d_add =
            sabre.cx_add > 0.0
                ? 100.0 * (1.0 - nassc.cx_add / sabre.cx_add)
                : 0.0;
        double t_ratio = nassc.seconds / sabre.seconds;

        gm_total.add_ratio(nassc.cx_total, sabre.cx_total);
        gm_add.add_ratio(nassc.cx_add, sabre.cx_add);
        time_ratio_log += std::log(t_ratio);
        ++time_n;

        std::printf("%-15s %4d %9d | %9.1f %9.1f %8.3f | %9.1f %9.1f %8.3f "
                    "| %7.2f%% %7.2f%% %7.2f\n",
                    bc.name.c_str(), bc.circuit.num_qubits(), base.cx_total,
                    sabre.cx_total, sabre.cx_add, sabre.seconds,
                    nassc.cx_total, nassc.cx_add, nassc.seconds, d_total,
                    d_add, t_ratio);

        char line[512];
        std::snprintf(line, sizeof(line),
                      "%s,%d,%d,%.1f,%.1f,%.4f,%.1f,%.1f,%.4f,%.2f,%.2f,%.2f",
                      bc.name.c_str(), bc.circuit.num_qubits(), base.cx_total,
                      sabre.cx_total, sabre.cx_add, sabre.seconds,
                      nassc.cx_total, nassc.cx_add, nassc.seconds, d_total,
                      d_add, t_ratio);
        csv.push_back(line);
        std::fflush(stdout);
    }

    std::printf("\nGeometric mean dCNOT_total: %.2f%%   (paper: 13.25%%)\n",
                gm_total.reduction_percent());
    std::printf("Geometric mean dCNOT_add:   %.2f%%   (paper: 21.30%%)\n",
                gm_add.reduction_percent());
    std::printf("Geometric mean time ratio:  %.2fx    (paper: 1.32x)\n",
                std::exp(time_ratio_log / time_n));
    std::printf("batch: %zu jobs in %.2fs wall, %zu distance matrix "
                "computation(s)\n",
                report.results.size(), report.seconds,
                report.distance_computations);

    write_csv(args.csv, csv);
    return 0;
}
