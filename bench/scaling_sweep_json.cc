// Topology-axis scaling sweep, emitting a JSON record per
// (device, workload) cell:
//
//   [{"device": "heavy_hex_21", "qubits": 1123, "workload": "ghz24",
//     "wall_ms": 21.4, "swaps": 114, "provider": "sparse",
//     "rows_computed": 509, "peak_distance_bytes": 4572856,
//     "dense_bytes": 10089032}, ...]
//
// Each cell is one full transpile() through a PRIVATE DistanceCache, so
// peak_distance_bytes is exactly the distance storage that cell's
// pipeline allocated: on dense devices (montreal, below the
// sparse_distance_threshold) it equals dense_bytes = n^2 * 8, while on
// the 129..4243-qubit heavy-hex and grid-of-grids lattices the sparse
// row provider keeps it proportional to the rows routing actually
// touched.  The ratio peak_distance_bytes / dense_bytes is the headline
// number of the "Scaling the topology axis" README section.
//
// The `bench_scaling` CMake/CTest target runs this and CI uploads the
// resulting BENCH_scaling.json; bench/compare_bench_json.py
// --scaling-current diffs it against bench/BENCH_scaling_baseline.json
// informationally (wall times are machine-noisy; the byte and row
// counters are deterministic, so any drift there is a pipeline-shape
// change).
//
// Usage: scaling_sweep_json [--out PATH] [--reps N] [--max-qubits N]
//
// --max-qubits skips devices larger than N (the 4k-qubit cells dominate
// the sweep's wall time; CI keeps them, quick local runs may not want
// them).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "nassc/circuits/library.h"
#include "nassc/service/distance_cache.h"
#include "nassc/topo/backends.h"
#include "nassc/transpile/transpile.h"

using namespace nassc;

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_scaling.json";
    int reps = 3; // best-of-N wall time per cell
    int max_qubits = 0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
            out_path = argv[++i];
        else if (!std::strcmp(argv[i], "--reps") && i + 1 < argc)
            reps = std::atoi(argv[++i]);
        else if (!std::strcmp(argv[i], "--max-qubits") && i + 1 < argc)
            max_qubits = std::atoi(argv[++i]);
    }
    if (reps < 1)
        reps = 1;

    // Table-I-class anchor plus the published heavy-hex generations
    // (Eagle 127 / Osprey 433 / Condor 1121 scale) and a 4k-qubit
    // multi-chip grid-of-grids.
    std::vector<Backend> devices;
    devices.push_back(montreal_backend());
    for (int d : {7, 13, 21, 41})
        devices.push_back(heavy_hex_backend(d));
    devices.push_back(grid_of_grids_backend(5, 5, 13, 13));

    const std::vector<std::pair<std::string, QuantumCircuit>> workloads = {
        {"ghz24", ghz(24)},
        {"qft16", qft(16)},
    };

    std::string json = "[\n";
    bool first = true;
    for (const Backend &dev : devices) {
        const int n = dev.coupling.num_qubits();
        if (max_qubits > 0 && n > max_qubits)
            continue;
        const std::size_t dense_bytes =
            static_cast<std::size_t>(n) * static_cast<std::size_t>(n) * 8;
        for (const auto &[wname, circuit] : workloads) {
            TranspileOptions opts;
            opts.router = RoutingAlgorithm::kSabre;
            // Default sparse_distance_threshold: montreal stays on the
            // historical dense matrix, everything larger goes sparse —
            // exactly what production transpiles would allocate.
            const bool sparse = n > opts.sparse_distance_threshold;

            double best_ms = 0.0;
            int swaps = 0;
            std::size_t rows_computed = 0, peak_bytes = 0;
            for (int r = 0; r < reps; ++r) {
                DistanceCache cache; // fresh: cell-exact byte accounting
                auto t0 = std::chrono::steady_clock::now();
                const TranspileResult res =
                    transpile(circuit, dev, opts, cache);
                auto t1 = std::chrono::steady_clock::now();
                const double ms =
                    std::chrono::duration<double, std::milli>(t1 - t0)
                        .count();
                if (r == 0 || ms < best_ms)
                    best_ms = ms;
                swaps = res.routing_stats.num_swaps;
                const DistanceCache::Stats s = cache.stats();
                rows_computed = s.rows_computed;
                peak_bytes = s.row_bytes_peak;
            }

            char row[400];
            std::snprintf(
                row, sizeof(row),
                "  {\"device\": \"%s\", \"qubits\": %d, "
                "\"workload\": \"%s\", \"wall_ms\": %.3f, "
                "\"swaps\": %d, \"provider\": \"%s\", "
                "\"rows_computed\": %zu, \"peak_distance_bytes\": %zu, "
                "\"dense_bytes\": %zu}",
                dev.name.c_str(), n, wname.c_str(), best_ms, swaps,
                sparse ? "sparse" : "dense", rows_computed, peak_bytes,
                dense_bytes);
            if (!first)
                json += ",\n";
            json += row;
            first = false;
            std::printf("%-16s %5dq %-6s %9.3f ms  %5d swaps  "
                        "%-6s rows=%zu  peak=%zu (dense %zu, %.1f%%)\n",
                        dev.name.c_str(), n, wname.c_str(), best_ms, swaps,
                        sparse ? "sparse" : "dense", rows_computed,
                        peak_bytes, dense_bytes,
                        100.0 * static_cast<double>(peak_bytes) /
                            static_cast<double>(dense_bytes));
        }
    }
    json += "\n]\n";

    std::ofstream f(out_path);
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    f << json;
    std::printf("json written to %s\n", out_path.c_str());
    return 0;
}
