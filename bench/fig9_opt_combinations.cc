// Reproduces Figure 9: CNOT reduction vs SABRE for the best of the 8
// enable/disable combinations of the three NASSC optimizations, compared
// with the all-enabled configuration, on three coupling maps
// (paper Sec. IV-F).
//
// Each coupling map's full sweep — SABRE baseline plus all 8 optimization
// masks for every benchmark and seed — runs as one BatchTranspiler batch.

#include "bench_common.h"

using namespace nassc;
using namespace nassc::bench;

namespace {

/** Average cx_total of the next `seeds` results (submission order). */
double
mean_cx(const std::vector<JobResult> &results, std::size_t &idx, int seeds)
{
    return cell_from_results(results, idx, seeds, 0, 0).cx_total;
}

} // namespace

int
main(int argc, char **argv)
{
    // 8 configurations x 15 benchmarks x 3 maps: default to one seed so
    // the default bench sweep stays quick; pass --seeds for averaging.
    Args args = parse_args(argc, argv, /*default_seeds=*/1);

    std::vector<std::shared_ptr<const Backend>> devices;
    devices.push_back(std::make_shared<Backend>(montreal_backend()));
    devices.push_back(std::make_shared<Backend>(linear_backend(25)));
    devices.push_back(std::make_shared<Backend>(grid_backend(5, 5)));

    std::vector<std::string> csv;
    csv.push_back("map,benchmark,sabre_cx,best_mask,best_cx,all_cx,"
                  "best_reduction_pct,all_reduction_pct");

    BatchTranspiler engine(args.batch());
    const std::vector<BenchmarkCase> benchmarks = table_benchmarks();

    for (const auto &dev : devices) {
        std::printf("\nFig. 9 (%s): CNOT reduction vs SABRE "
                    "(%d seeds/cell)\n",
                    dev->name.c_str(), args.seeds);
        std::printf("%-15s %9s | %5s %9s %8s | %9s %8s\n", "name",
                    "CXsabre", "mask", "CXbest", "best%", "CXall", "all%");

        // Queue the device's whole sweep: per benchmark, the SABRE
        // baseline followed by the 8 optimization-mask configurations.
        // mask bit0 = C2q, bit1 = Ccommute1, bit2 = Ccommute2.
        std::vector<TranspileJob> jobs;
        std::vector<const BenchmarkCase *> cases;
        for (const BenchmarkCase &bc : benchmarks) {
            if (bc.circuit.num_qubits() > dev->coupling.num_qubits())
                continue;
            cases.push_back(&bc);
            queue_cell_jobs(jobs, bc.name + "/sabre", bc.circuit, dev,
                            RoutingAlgorithm::kSabre, args.seeds);
            for (int mask = 0; mask < 8; ++mask) {
                TranspileOptions base;
                base.enable_c2q = mask & 1;
                base.enable_commute1 = mask & 2;
                base.enable_commute2 = mask & 4;
                queue_cell_jobs(jobs,
                                bc.name + "/m" + std::to_string(mask),
                                bc.circuit, dev, RoutingAlgorithm::kNassc,
                                args.seeds, /*noise_aware=*/false, base);
            }
        }
        BatchReport report = engine.run(jobs);

        std::size_t idx = 0;
        for (const BenchmarkCase *bc : cases) {
            double sabre = mean_cx(report.results, idx, args.seeds);
            double best = 1e30;
            int best_mask = 0;
            double all = 0.0;
            for (int mask = 0; mask < 8; ++mask) {
                double cx = mean_cx(report.results, idx, args.seeds);
                if (cx < best) {
                    best = cx;
                    best_mask = mask;
                }
                if (mask == 7)
                    all = cx;
            }
            double best_red = 100.0 * (1.0 - best / sabre);
            double all_red = 100.0 * (1.0 - all / sabre);
            std::printf("%-15s %9.1f | %5d %9.1f %7.2f%% | %9.1f %7.2f%%\n",
                        bc->name.c_str(), sabre, best_mask, best, best_red,
                        all, all_red);
            char line[384];
            std::snprintf(line, sizeof(line),
                          "%s,%s,%.1f,%d,%.1f,%.1f,%.2f,%.2f",
                          dev->name.c_str(), bc->name.c_str(), sabre,
                          best_mask, best, all, best_red, all_red);
            csv.push_back(line);
            std::fflush(stdout);
        }
    }

    std::printf("\nExpectation (paper): enabling all three optimizations "
                "tracks the best of the 8 combinations closely on most "
                "benchmarks.\n");
    std::printf("distance matrices computed across all maps: %zu\n",
                engine.distance_cache().computation_count());
    write_csv(args.csv, csv);
    return 0;
}
