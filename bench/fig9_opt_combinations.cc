// Reproduces Figure 9: CNOT reduction vs SABRE for the best of the 8
// enable/disable combinations of the three NASSC optimizations, compared
// with the all-enabled configuration, on three coupling maps
// (paper Sec. IV-F).

#include "bench_common.h"

using namespace nassc;
using namespace nassc::bench;

namespace {

double
combo_cx(const QuantumCircuit &circuit, const Backend &dev, int mask,
         int seeds)
{
    double total = 0.0;
    for (int s = 0; s < seeds; ++s) {
        TranspileOptions opts;
        opts.router = RoutingAlgorithm::kNassc;
        opts.seed = static_cast<unsigned>(s);
        opts.enable_c2q = mask & 1;
        opts.enable_commute1 = mask & 2;
        opts.enable_commute2 = mask & 4;
        total += transpile(circuit, dev, opts).cx_total;
    }
    return total / seeds;
}

} // namespace

int
main(int argc, char **argv)
{
    // 8 configurations x 15 benchmarks x 3 maps: default to one seed so
    // the default bench sweep stays quick; pass --seeds for averaging.
    Args args = parse_args(argc, argv, /*default_seeds=*/1);

    std::vector<Backend> devices;
    devices.push_back(montreal_backend());
    devices.push_back(linear_backend(25));
    devices.push_back(grid_backend(5, 5));

    std::vector<std::string> csv;
    csv.push_back("map,benchmark,sabre_cx,best_mask,best_cx,all_cx,"
                  "best_reduction_pct,all_reduction_pct");

    for (const Backend &dev : devices) {
        std::printf("\nFig. 9 (%s): CNOT reduction vs SABRE "
                    "(%d seeds/cell)\n",
                    dev.name.c_str(), args.seeds);
        std::printf("%-15s %9s | %5s %9s %8s | %9s %8s\n", "name",
                    "CXsabre", "mask", "CXbest", "best%", "CXall", "all%");

        for (const BenchmarkCase &bc : table_benchmarks()) {
            if (bc.circuit.num_qubits() > dev.coupling.num_qubits())
                continue;
            double sabre = 0.0;
            for (int s = 0; s < args.seeds; ++s) {
                TranspileOptions opts;
                opts.router = RoutingAlgorithm::kSabre;
                opts.seed = static_cast<unsigned>(s);
                sabre += transpile(bc.circuit, dev, opts).cx_total;
            }
            sabre /= args.seeds;

            // mask bit0 = C2q, bit1 = Ccommute1, bit2 = Ccommute2.
            double best = 1e30;
            int best_mask = 0;
            double all = 0.0;
            for (int mask = 0; mask < 8; ++mask) {
                double cx = combo_cx(bc.circuit, dev, mask, args.seeds);
                if (cx < best) {
                    best = cx;
                    best_mask = mask;
                }
                if (mask == 7)
                    all = cx;
            }
            double best_red = 100.0 * (1.0 - best / sabre);
            double all_red = 100.0 * (1.0 - all / sabre);
            std::printf("%-15s %9.1f | %5d %9.1f %7.2f%% | %9.1f %7.2f%%\n",
                        bc.name.c_str(), sabre, best_mask, best, best_red,
                        all, all_red);
            char line[384];
            std::snprintf(line, sizeof(line),
                          "%s,%s,%.1f,%d,%.1f,%.1f,%.2f,%.2f",
                          dev.name.c_str(), bc.name.c_str(), sabre,
                          best_mask, best, all, best_red, all_red);
            csv.push_back(line);
            std::fflush(stdout);
        }
    }

    std::printf("\nExpectation (paper): enabling all three optimizations "
                "tracks the best of the 8 combinations closely on most "
                "benchmarks.\n");
    write_csv(args.csv, csv);
    return 0;
}
