#ifndef NASSC_BENCH_BENCH_COMMON_H
#define NASSC_BENCH_BENCH_COMMON_H

/**
 * @file
 * Shared harness code for the table/figure reproduction binaries.
 *
 * Every bench binary accepts:
 *   --seeds N    number of layout seeds averaged per cell (default 3;
 *                the paper averages 10 — pass --seeds 10 to match)
 *   --csv PATH   also write the table as CSV
 *   --threads N  batch worker threads (default: hardware concurrency).
 *                Per-cell t(s) columns are measured per job, so under
 *                parallel contention they run higher than a sequential
 *                sweep; pass --threads 1 for paper-comparable timings.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "nassc/circuits/library.h"
#include "nassc/service/batch_transpiler.h"
#include "nassc/transpile/context.h"

namespace nassc::bench {

struct Args
{
    int seeds = 3;
    int threads = 0; ///< batch workers; 0 = hardware concurrency
    std::string csv;

    /** BatchTranspiler options honouring --threads. */
    BatchOptions batch() const
    {
        BatchOptions opts;
        opts.num_threads = threads;
        return opts;
    }
};

inline Args
parse_args(int argc, char **argv, int default_seeds = 3)
{
    Args a;
    a.seeds = default_seeds;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--seeds") && i + 1 < argc)
            a.seeds = std::atoi(argv[++i]);
        else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc)
            a.threads = std::atoi(argv[++i]);
        else if (!std::strcmp(argv[i], "--csv") && i + 1 < argc)
            a.csv = argv[++i];
    }
    if (a.seeds < 1)
        a.seeds = 1;
    return a;
}

/** Seed-averaged metrics of one (benchmark, router) cell. */
struct Cell
{
    double cx_total = 0.0;
    double cx_add = 0.0;
    double depth_total = 0.0;
    double depth_add = 0.0;
    double seconds = 0.0;
    RoutingStats stats; // accumulated over seeds

    void
    accumulate(const TranspileResult &r)
    {
        cx_total += r.cx_total;
        depth_total += r.depth;
        seconds += r.seconds;
        stats.num_swaps += r.routing_stats.num_swaps;
        stats.flagged_swaps += r.routing_stats.flagged_swaps;
        stats.c2q_hits += r.routing_stats.c2q_hits;
        stats.commute1_hits += r.routing_stats.commute1_hits;
        stats.commute2_hits += r.routing_stats.commute2_hits;
    }

    void
    finish(int seeds, int base_cx, int base_depth)
    {
        cx_total /= seeds;
        depth_total /= seeds;
        seconds /= seeds;
        cx_add = cx_total - base_cx;
        depth_add = depth_total - base_depth;
    }
};

inline Cell
run_cell(const QuantumCircuit &circuit, const Backend &backend,
         RoutingAlgorithm router, int seeds, int base_cx, int base_depth,
         bool noise_aware = false)
{
    Cell cell;
    for (int s = 0; s < seeds; ++s) {
        TranspileOptions opts;
        opts.router = router;
        opts.seed = static_cast<unsigned>(s);
        opts.noise_aware = noise_aware;
        cell.accumulate(
            TranspileContext::global().transpile(circuit, backend, opts));
    }
    cell.finish(seeds, base_cx, base_depth);
    return cell;
}

/**
 * Queue `seeds` jobs for one (benchmark, router) cell onto a batch.
 * Pair with cell_from_results() after BatchTranspiler::run(); jobs are
 * consumed in submission order, so queue and fold in the same sequence.
 */
inline void
queue_cell_jobs(std::vector<TranspileJob> &jobs, const std::string &tag,
                const QuantumCircuit &circuit,
                const std::shared_ptr<const Backend> &backend,
                RoutingAlgorithm router, int seeds,
                bool noise_aware = false,
                const TranspileOptions &base_opts = {})
{
    for (int s = 0; s < seeds; ++s) {
        TranspileJob job;
        job.tag = tag + "/s" + std::to_string(s);
        job.circuit = circuit;
        job.backend = backend;
        job.options = base_opts;
        job.options.router = router;
        job.options.noise_aware = noise_aware;
        job.options.seed = static_cast<unsigned>(s);
        jobs.push_back(std::move(job));
    }
}

/** Fold the next `seeds` batch results (submission order) into a Cell. */
inline Cell
cell_from_results(const std::vector<JobResult> &results, std::size_t &idx,
                  int seeds, int base_cx, int base_depth)
{
    Cell cell;
    for (int s = 0; s < seeds; ++s) {
        const JobResult &jr = results.at(idx++);
        if (!jr.ok)
            throw std::runtime_error("batch job '" + jr.tag +
                                     "' failed: " + jr.error);
        cell.accumulate(jr.result);
    }
    cell.finish(seeds, base_cx, base_depth);
    return cell;
}

/** Geometric mean of ratios 1 - nassc/sabre, reported as percent. */
class GeoMean
{
  public:
    void
    add_ratio(double nassc, double sabre)
    {
        if (sabre <= 0.0 || nassc <= 0.0)
            return; // degenerate cell; skip like the paper's tooling
        log_sum_ += std::log(nassc / sabre);
        ++n_;
    }

    double
    reduction_percent() const
    {
        if (n_ == 0)
            return 0.0;
        return 100.0 * (1.0 - std::exp(log_sum_ / n_));
    }

  private:
    double log_sum_ = 0.0;
    int n_ = 0;
};

inline void
write_csv(const std::string &path, const std::vector<std::string> &rows)
{
    if (path.empty())
        return;
    std::ofstream f(path);
    for (const std::string &r : rows)
        f << r << "\n";
    std::printf("csv written to %s\n", path.c_str());
}

} // namespace nassc::bench

#endif // NASSC_BENCH_BENCH_COMMON_H
