#ifndef NASSC_BENCH_BENCH_COMMON_H
#define NASSC_BENCH_BENCH_COMMON_H

/**
 * @file
 * Shared harness code for the table/figure reproduction binaries.
 *
 * Every bench binary accepts:
 *   --seeds N   number of layout seeds averaged per cell (default 3;
 *               the paper averages 10 — pass --seeds 10 to match)
 *   --csv PATH  also write the table as CSV
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "nassc/circuits/library.h"
#include "nassc/transpile/transpile.h"

namespace nassc::bench {

struct Args
{
    int seeds = 3;
    std::string csv;
};

inline Args
parse_args(int argc, char **argv, int default_seeds = 3)
{
    Args a;
    a.seeds = default_seeds;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--seeds") && i + 1 < argc)
            a.seeds = std::atoi(argv[++i]);
        else if (!std::strcmp(argv[i], "--csv") && i + 1 < argc)
            a.csv = argv[++i];
    }
    if (a.seeds < 1)
        a.seeds = 1;
    return a;
}

/** Seed-averaged metrics of one (benchmark, router) cell. */
struct Cell
{
    double cx_total = 0.0;
    double cx_add = 0.0;
    double depth_total = 0.0;
    double depth_add = 0.0;
    double seconds = 0.0;
    RoutingStats stats; // accumulated over seeds
};

inline Cell
run_cell(const QuantumCircuit &circuit, const Backend &backend,
         RoutingAlgorithm router, int seeds, int base_cx, int base_depth,
         bool noise_aware = false)
{
    Cell cell;
    for (int s = 0; s < seeds; ++s) {
        TranspileOptions opts;
        opts.router = router;
        opts.seed = static_cast<unsigned>(s);
        opts.noise_aware = noise_aware;
        TranspileResult r = transpile(circuit, backend, opts);
        cell.cx_total += r.cx_total;
        cell.depth_total += r.depth;
        cell.seconds += r.seconds;
        cell.stats.num_swaps += r.routing_stats.num_swaps;
        cell.stats.flagged_swaps += r.routing_stats.flagged_swaps;
        cell.stats.c2q_hits += r.routing_stats.c2q_hits;
        cell.stats.commute1_hits += r.routing_stats.commute1_hits;
        cell.stats.commute2_hits += r.routing_stats.commute2_hits;
    }
    cell.cx_total /= seeds;
    cell.depth_total /= seeds;
    cell.seconds /= seeds;
    cell.cx_add = cell.cx_total - base_cx;
    cell.depth_add = cell.depth_total - base_depth;
    return cell;
}

/** Geometric mean of ratios 1 - nassc/sabre, reported as percent. */
class GeoMean
{
  public:
    void
    add_ratio(double nassc, double sabre)
    {
        if (sabre <= 0.0 || nassc <= 0.0)
            return; // degenerate cell; skip like the paper's tooling
        log_sum_ += std::log(nassc / sabre);
        ++n_;
    }

    double
    reduction_percent() const
    {
        if (n_ == 0)
            return 0.0;
        return 100.0 * (1.0 - std::exp(log_sum_ / n_));
    }

  private:
    double log_sum_ = 0.0;
    int n_ = 0;
};

inline void
write_csv(const std::string &path, const std::vector<std::string> &rows)
{
    if (path.empty())
        return;
    std::ofstream f(path);
    for (const std::string &r : rows)
        f << r << "\n";
    std::printf("csv written to %s\n", path.c_str());
}

} // namespace nassc::bench

#endif // NASSC_BENCH_BENCH_COMMON_H
