// Ablation: lookahead (extended layer) size |E| and the SABRE decay
// factor.  The paper fixes |E| = 20, W = 0.5 (Sec. V); this bench shows
// the sensitivity of both routers to those choices.

#include "bench_common.h"

using namespace nassc;
using namespace nassc::bench;

namespace {

double
avg_cx(const QuantumCircuit &circuit, const Backend &dev,
       RoutingAlgorithm router, int ext_size, bool decay, int seeds)
{
    double t = 0.0;
    for (int s = 0; s < seeds; ++s) {
        TranspileOptions opts;
        opts.router = router;
        opts.extended_size = ext_size;
        opts.use_decay = decay;
        opts.seed = static_cast<unsigned>(s);
        t += TranspileContext::global().transpile(circuit, dev, opts).cx_total;
    }
    return t / seeds;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args = parse_args(argc, argv);
    Backend dev = grid_backend(5, 5);
    const int sizes[] = {0, 5, 10, 20, 40};

    std::vector<BenchmarkCase> cases;
    for (auto &bc : table_benchmarks())
        if (bc.name == "qft_n15" || bc.name == "grover_n8" ||
            bc.name == "vqe_n12" || bc.name == "adder_n10")
            cases.push_back(bc);

    std::printf("Ablation: extended-layer size sweep on %s "
                "(%d seeds, NASSC)\n\n",
                dev.name.c_str(), args.seeds);
    std::printf("%-12s", "name");
    for (int e : sizes)
        std::printf("   |E|=%-4d", e);
    std::printf("   no-decay(20)\n");

    for (const BenchmarkCase &bc : cases) {
        std::printf("%-12s", bc.name.c_str());
        for (int e : sizes)
            std::printf(" %9.1f",
                        avg_cx(bc.circuit, dev, RoutingAlgorithm::kNassc, e,
                               true, args.seeds));
        std::printf(" %11.1f\n",
                    avg_cx(bc.circuit, dev, RoutingAlgorithm::kNassc, 20,
                           false, args.seeds));
        std::fflush(stdout);
    }

    std::printf("\nReading: |E| = 20 (the paper's setting) is at or near "
                "the sweet spot; |E| = 0 (no lookahead) is notably "
                "worse.\n");
    return 0;
}
