// Fast routing-only sweep over the Table I suite, emitting a JSON
// record per (circuit, router, layout_trials) cell:
//
//   [{"circuit": "qft_n15", "router": "sabre", "wall_ms": 1.84,
//     "swaps": 155, "layout_ms": 11.2, "layout_trials": 1,
//     "route_passes": 1}, ...]
//
// The `bench_json` CMake/CTest target runs this and CI uploads the
// resulting BENCH_routing.json, so the repository accumulates a
// routing-performance trajectory across commits;
// bench/compare_bench_json.py diffs it against the committed
// bench/BENCH_baseline.json as an advisory regression gate.
//
// Two timed regions per cell, both deliberately separated:
//
//  - layout_ms: one search_and_route() run (the LayoutSearch engine,
//    honouring --threads), timed per trial count; this includes the
//    per-trial full-circuit scoring passes, which on kSabre pipelines
//    double as the final route (retained-trial reuse);
//  - wall_ms: route_circuit() alone, best of --reps runs from the one
//    fixed layout derived above — layout search never sits inside the
//    routing-timed region, so the router trend stays clean.
//
// route_passes records the full-circuit routing passes a transpile()
// with that (router, trials) cell performs: the per-trial scoring
// passes, plus one separate final route unless the winning trial's
// pass is reused (kSabre).  Reuse therefore shows exactly one fewer
// pass than the same cell without it.
//
// Usage: routing_sweep_json [--out PATH] [--reps N] [--trials N]
//                           [--threads N]
//
// By default each circuit is swept at layout_trials = 1 and 4;
// --trials N restricts the sweep to that single trial count.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "nassc/circuits/library.h"
#include "nassc/passes/basis_translation.h"
#include "nassc/route/layout_search.h"
#include "nassc/route/sabre.h"
#include "nassc/topo/backends.h"

using namespace nassc;

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_routing.json";
    int reps = 3;   // best-of-N wall time per cell
    int trials_override = 0;
    int threads = 0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
            out_path = argv[++i];
        else if (!std::strcmp(argv[i], "--reps") && i + 1 < argc)
            reps = std::atoi(argv[++i]);
        else if (!std::strcmp(argv[i], "--trials") && i + 1 < argc)
            trials_override = std::atoi(argv[++i]);
        else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc)
            threads = std::atoi(argv[++i]);
    }
    if (reps < 1)
        reps = 1;
    std::vector<int> trial_counts = {1, 4};
    if (trials_override > 0)
        trial_counts = {trials_override};

    Backend dev = montreal_backend();
    const auto dist = hop_distance(dev.coupling);

    std::string json = "[\n";
    bool first = true;
    for (const BenchmarkCase &bc : table_benchmarks()) {
        QuantumCircuit logical = decompose_to_2q(bc.circuit);
        for (int trials : trial_counts) {
            // One shared SABRE-refined layout per (circuit, trials)
            // cell (as in transpile()), derived once and hoisted out of
            // the routing-timed loop below.
            RoutingOptions lopts;
            lopts.layout_trials = trials;
            lopts.layout_threads = threads;
            // Best-of-reps like wall_ms below: the search is
            // deterministic, so repeats only shave scheduler noise off
            // the regression gate.
            double layout_ms = 0.0;
            LayoutSearchResult search;
            for (int r = 0; r < reps; ++r) {
                auto l0 = std::chrono::steady_clock::now();
                search = search_and_route(logical, dev.coupling, dist,
                                          lopts);
                auto l1 = std::chrono::steady_clock::now();
                double ms =
                    std::chrono::duration<double, std::milli>(l1 - l0)
                        .count();
                if (r == 0 || ms < layout_ms)
                    layout_ms = ms;
            }
            const Layout &init = search.initial;
            for (RoutingAlgorithm alg :
                 {RoutingAlgorithm::kSabre, RoutingAlgorithm::kNassc}) {
                RoutingOptions opts;
                opts.algorithm = alg;
                // What a transpile() of this cell performs.  The
                // kSabre count comes from the search's own accounting
                // (it ran with exactly these options, retention
                // included); kNassc retains nothing, so it pays the
                // same racing-mode scoring passes plus the tracker
                // route — scoring_passes would be 0 for trials == 1
                // since nothing consumes an unretained single score.
                const int route_passes =
                    alg == RoutingAlgorithm::kSabre
                        ? search.scoring_passes +
                              (search.routed ? 0 : 1)
                        : (trials > 1 ? trials : 0) + 1;
                double best_ms = 0.0;
                int swaps = 0;
                for (int r = 0; r < reps; ++r) {
                    auto t0 = std::chrono::steady_clock::now();
                    RoutingResult res = route_circuit(
                        logical, dev.coupling, dist, init, opts);
                    auto t1 = std::chrono::steady_clock::now();
                    double ms =
                        std::chrono::duration<double, std::milli>(t1 - t0)
                            .count();
                    if (r == 0 || ms < best_ms)
                        best_ms = ms;
                    swaps = res.stats.num_swaps;
                }
                char row[360];
                std::snprintf(
                    row, sizeof(row),
                    "  {\"circuit\": \"%s\", \"router\": \"%s\", "
                    "\"wall_ms\": %.3f, \"swaps\": %d, "
                    "\"layout_ms\": %.3f, \"layout_trials\": %d, "
                    "\"route_passes\": %d}",
                    bc.name.c_str(),
                    alg == RoutingAlgorithm::kSabre ? "sabre" : "nassc",
                    best_ms, swaps, layout_ms, trials, route_passes);
                if (!first)
                    json += ",\n";
                json += row;
                first = false;
                std::printf(
                    "%-16s %-6s %8.3f ms  %6d swaps  (layout %8.3f ms, "
                    "%d trials, %d passes)\n",
                    bc.name.c_str(),
                    alg == RoutingAlgorithm::kSabre ? "sabre" : "nassc",
                    best_ms, swaps, layout_ms, trials, route_passes);
            }
        }
    }
    json += "\n]\n";

    std::ofstream f(out_path);
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    f << json;
    std::printf("json written to %s\n", out_path.c_str());
    return 0;
}
