// Fast routing-only sweep over the Table I suite, emitting a JSON
// record per (circuit, router) cell:
//
//   [{"circuit": "qft_n15", "router": "sabre", "wall_ms": 1.84,
//     "swaps": 155}, ...]
//
// The `bench_json` CMake/CTest target runs this and CI uploads the
// resulting BENCH_routing.json, so the repository accumulates a
// routing-performance trajectory across commits.  Unlike the table
// reproduction binaries this times route_circuit() alone — no layout
// search inside the timed region, no post-routing optimization — which
// is exactly the hot path the flat-memory router core targets.
//
// Usage: routing_sweep_json [--out PATH] [--reps N]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "nassc/circuits/library.h"
#include "nassc/passes/basis_translation.h"
#include "nassc/route/sabre.h"
#include "nassc/topo/backends.h"

using namespace nassc;

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_routing.json";
    int reps = 3; // best-of-N wall time per cell
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
            out_path = argv[++i];
        else if (!std::strcmp(argv[i], "--reps") && i + 1 < argc)
            reps = std::atoi(argv[++i]);
    }
    if (reps < 1)
        reps = 1;

    Backend dev = montreal_backend();
    const auto dist = hop_distance(dev.coupling);

    std::string json = "[\n";
    bool first = true;
    for (const BenchmarkCase &bc : table_benchmarks()) {
        QuantumCircuit logical = decompose_to_2q(bc.circuit);
        // One shared SABRE-refined layout per circuit (as in transpile()).
        RoutingOptions lopts;
        Layout init = sabre_initial_layout(logical, dev.coupling, dist,
                                           lopts);
        for (RoutingAlgorithm alg :
             {RoutingAlgorithm::kSabre, RoutingAlgorithm::kNassc}) {
            RoutingOptions opts;
            opts.algorithm = alg;
            double best_ms = 0.0;
            int swaps = 0;
            for (int r = 0; r < reps; ++r) {
                auto t0 = std::chrono::steady_clock::now();
                RoutingResult res =
                    route_circuit(logical, dev.coupling, dist, init, opts);
                auto t1 = std::chrono::steady_clock::now();
                double ms =
                    std::chrono::duration<double, std::milli>(t1 - t0)
                        .count();
                if (r == 0 || ms < best_ms)
                    best_ms = ms;
                swaps = res.stats.num_swaps;
            }
            char row[256];
            std::snprintf(row, sizeof(row),
                          "  {\"circuit\": \"%s\", \"router\": \"%s\", "
                          "\"wall_ms\": %.3f, \"swaps\": %d}",
                          bc.name.c_str(),
                          alg == RoutingAlgorithm::kSabre ? "sabre"
                                                          : "nassc",
                          best_ms, swaps);
            if (!first)
                json += ",\n";
            json += row;
            first = false;
            std::printf("%-16s %-6s %8.3f ms  %6d swaps\n", bc.name.c_str(),
                        alg == RoutingAlgorithm::kSabre ? "sabre" : "nassc",
                        best_ms, swaps);
        }
    }
    json += "\n]\n";

    std::ofstream f(out_path);
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    f << json;
    std::printf("json written to %s\n", out_path.c_str());
    return 0;
}
