// Reproduces Tables III and IV: additional CNOT gates of NASSC vs SABRE
// on the 25-qubit linear-nearest-neighbour chain and on the 5x5 2D grid
// (paper Sec. VI-C).  Build as two binaries selecting the backend via
// TABLE3_LINEAR / TABLE4_GRID.

#include "bench_common.h"

using namespace nassc;
using namespace nassc::bench;

int
main(int argc, char **argv)
{
    Args args = parse_args(argc, argv);
#ifdef TABLE3_LINEAR
    Backend dev = linear_backend(25);
    const char *table = "Table III";
    const char *paper_total = "21.92%", *paper_add = "34.65%";
#else
    Backend dev = grid_backend(5, 5);
    const char *table = "Table IV";
    const char *paper_total = "15.13%", *paper_add = "28.10%";
#endif

    std::printf("%s: additional CNOTs, SABRE vs NASSC on %s "
                "(%d seeds/cell)\n\n",
                table, dev.name.c_str(), args.seeds);
    std::printf("%-15s %4s %9s | %9s %9s | %9s %9s | %8s %8s %7s\n", "name",
                "#q", "CXorig", "CXsabre", "CXadd", "CXnassc", "CXadd",
                "dTotal", "dAdd", "t_ratio");

    std::vector<std::string> csv;
    csv.push_back("name,qubits,cx_orig,cx_sabre,cx_add_sabre,cx_nassc,"
                  "cx_add_nassc,delta_total,delta_add,time_ratio");

    GeoMean gm_total, gm_add;

    for (const BenchmarkCase &bc : table_benchmarks()) {
        if (bc.circuit.num_qubits() > dev.coupling.num_qubits())
            continue;
        TranspileResult base = optimize_only(bc.circuit);
        Cell sabre = run_cell(bc.circuit, dev, RoutingAlgorithm::kSabre,
                              args.seeds, base.cx_total, base.depth);
        Cell nassc = run_cell(bc.circuit, dev, RoutingAlgorithm::kNassc,
                              args.seeds, base.cx_total, base.depth);

        double d_total = 100.0 * (1.0 - nassc.cx_total / sabre.cx_total);
        double d_add =
            sabre.cx_add > 0.0
                ? 100.0 * (1.0 - nassc.cx_add / sabre.cx_add)
                : 0.0;
        double t_ratio = nassc.seconds / sabre.seconds;
        gm_total.add_ratio(nassc.cx_total, sabre.cx_total);
        gm_add.add_ratio(nassc.cx_add, sabre.cx_add);

        std::printf("%-15s %4d %9d | %9.1f %9.1f | %9.1f %9.1f | %7.2f%% "
                    "%7.2f%% %7.2f\n",
                    bc.name.c_str(), bc.circuit.num_qubits(), base.cx_total,
                    sabre.cx_total, sabre.cx_add, nassc.cx_total,
                    nassc.cx_add, d_total, d_add, t_ratio);

        char line[384];
        std::snprintf(line, sizeof(line),
                      "%s,%d,%d,%.1f,%.1f,%.1f,%.1f,%.2f,%.2f,%.2f",
                      bc.name.c_str(), bc.circuit.num_qubits(), base.cx_total,
                      sabre.cx_total, sabre.cx_add, nassc.cx_total,
                      nassc.cx_add, d_total, d_add, t_ratio);
        csv.push_back(line);
        std::fflush(stdout);
    }

    std::printf("\nGeometric mean dCNOT_total: %.2f%%  (paper: %s)\n",
                gm_total.reduction_percent(), paper_total);
    std::printf("Geometric mean dCNOT_add:   %.2f%%  (paper: %s)\n",
                gm_add.reduction_percent(), paper_add);

    write_csv(args.csv, csv);
    return 0;
}
