// Reproduces Tables III and IV: additional CNOT gates of NASSC vs SABRE
// on the 25-qubit linear-nearest-neighbour chain and on the 5x5 2D grid
// (paper Sec. VI-C).  Build as two binaries selecting the backend via
// TABLE3_LINEAR / TABLE4_GRID.

#include "bench_common.h"

using namespace nassc;
using namespace nassc::bench;

int
main(int argc, char **argv)
{
    Args args = parse_args(argc, argv);
#ifdef TABLE3_LINEAR
    auto dev = std::make_shared<Backend>(linear_backend(25));
    const char *table = "Table III";
    const char *paper_total = "21.92%", *paper_add = "34.65%";
#else
    auto dev = std::make_shared<Backend>(grid_backend(5, 5));
    const char *table = "Table IV";
    const char *paper_total = "15.13%", *paper_add = "28.10%";
#endif

    std::printf("%s: additional CNOTs, SABRE vs NASSC on %s "
                "(%d seeds/cell)\n\n",
                table, dev->name.c_str(), args.seeds);
    std::printf("%-15s %4s %9s | %9s %9s | %9s %9s | %8s %8s %7s\n", "name",
                "#q", "CXorig", "CXsabre", "CXadd", "CXnassc", "CXadd",
                "dTotal", "dAdd", "t_ratio");

    std::vector<std::string> csv;
    csv.push_back("name,qubits,cx_orig,cx_sabre,cx_add_sabre,cx_nassc,"
                  "cx_add_nassc,delta_total,delta_add,time_ratio");

    GeoMean gm_total, gm_add;

    // Queue the full sweep as one parallel batch sharing a cached
    // distance matrix, then fold cells back in submission order.
    const std::vector<BenchmarkCase> benchmarks = table_benchmarks();
    std::vector<TranspileJob> jobs;
    std::vector<const BenchmarkCase *> cases;
    for (const BenchmarkCase &bc : benchmarks) {
        if (bc.circuit.num_qubits() > dev->coupling.num_qubits())
            continue;
        cases.push_back(&bc);
        queue_cell_jobs(jobs, bc.name + "/sabre", bc.circuit, dev,
                        RoutingAlgorithm::kSabre, args.seeds);
        queue_cell_jobs(jobs, bc.name + "/nassc", bc.circuit, dev,
                        RoutingAlgorithm::kNassc, args.seeds);
    }
    BatchTranspiler engine(args.batch());
    BatchReport report = engine.run(jobs);

    std::size_t idx = 0;
    for (const BenchmarkCase *bcp : cases) {
        const BenchmarkCase &bc = *bcp;
        TranspileResult base =
            TranspileContext::global().optimize_only(bc.circuit);
        Cell sabre = cell_from_results(report.results, idx, args.seeds,
                                       base.cx_total, base.depth);
        Cell nassc = cell_from_results(report.results, idx, args.seeds,
                                       base.cx_total, base.depth);

        double d_total = 100.0 * (1.0 - nassc.cx_total / sabre.cx_total);
        double d_add =
            sabre.cx_add > 0.0
                ? 100.0 * (1.0 - nassc.cx_add / sabre.cx_add)
                : 0.0;
        double t_ratio = nassc.seconds / sabre.seconds;
        gm_total.add_ratio(nassc.cx_total, sabre.cx_total);
        gm_add.add_ratio(nassc.cx_add, sabre.cx_add);

        std::printf("%-15s %4d %9d | %9.1f %9.1f | %9.1f %9.1f | %7.2f%% "
                    "%7.2f%% %7.2f\n",
                    bc.name.c_str(), bc.circuit.num_qubits(), base.cx_total,
                    sabre.cx_total, sabre.cx_add, nassc.cx_total,
                    nassc.cx_add, d_total, d_add, t_ratio);

        char line[384];
        std::snprintf(line, sizeof(line),
                      "%s,%d,%d,%.1f,%.1f,%.1f,%.1f,%.2f,%.2f,%.2f",
                      bc.name.c_str(), bc.circuit.num_qubits(), base.cx_total,
                      sabre.cx_total, sabre.cx_add, nassc.cx_total,
                      nassc.cx_add, d_total, d_add, t_ratio);
        csv.push_back(line);
        std::fflush(stdout);
    }

    std::printf("\nGeometric mean dCNOT_total: %.2f%%  (paper: %s)\n",
                gm_total.reduction_percent(), paper_total);
    std::printf("Geometric mean dCNOT_add:   %.2f%%  (paper: %s)\n",
                gm_add.reduction_percent(), paper_add);

    write_csv(args.csv, csv);
    return 0;
}
