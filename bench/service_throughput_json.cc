// Serving-layer throughput sweep, emitting a JSON record per
// (workload, clients, cache) cell:
//
//   [{"workload": "small_mix", "clients": 4, "cache": 1, "repeat": 3,
//     "jobs": 60, "distinct": 20, "wall_ms": 412.0, "jobs_per_s": 145.6,
//     "hits": 28, "coalesced": 12, "deduped": 40, "transpiles": 20}, ...]
//
// Each cell spins up a fresh TranspileService on a fresh Scheduler and
// fires a mixed workload (several circuits x both routers x two seeds)
// from `clients` concurrent submitter threads, with every request
// repeated `repeat` times — the serving pattern the subsystem exists
// for.  With the cache on, `transpiles` is deterministic (exactly the
// distinct-key count: dedup guarantees one execution per key), and
// `deduped` = hits + coalesced is jobs - distinct; the hit/coalesce
// SPLIT depends on arrival timing and is informational only.
//
// The `bench_service` CMake/CTest target runs this and CI uploads the
// resulting BENCH_service.json; bench/compare_bench_json.py --service
// reports jobs_per_s drift against bench/BENCH_service_baseline.json
// informationally (service throughput is scheduling-noisy, so it never
// fails the gate).
//
// Usage: service_throughput_json [--out PATH] [--workers N] [--repeat N]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "nassc/circuits/library.h"
#include "nassc/service/scheduler.h"
#include "nassc/service/transpile_service.h"
#include "nassc/topo/backends.h"

using namespace nassc;

namespace {

struct Request
{
    QuantumCircuit circuit;
    TranspileOptions options;
};

/** The mixed workload: routing-relevant but CI-fast circuits. */
std::vector<Request>
small_mix()
{
    std::vector<QuantumCircuit> circuits = {
        qft(8), ghz(12), bernstein_vazirani(10, 0x155),
        vqe_linear(8), qaoa_maxcut(10, 2, 5),
    };
    std::vector<Request> requests;
    for (const QuantumCircuit &qc : circuits)
        for (RoutingAlgorithm router :
             {RoutingAlgorithm::kSabre, RoutingAlgorithm::kNassc})
            for (unsigned seed : {0u, 1u}) {
                Request r;
                r.circuit = qc;
                r.options.router = router;
                r.options.seed = seed;
                requests.push_back(std::move(r));
            }
    return requests;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_service.json";
    int workers = 4;
    int repeat = 3;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
            out_path = argv[++i];
        else if (!std::strcmp(argv[i], "--workers") && i + 1 < argc)
            workers = std::atoi(argv[++i]);
        else if (!std::strcmp(argv[i], "--repeat") && i + 1 < argc)
            repeat = std::atoi(argv[++i]);
    }
    if (workers < 1)
        workers = 1;
    if (repeat < 1)
        repeat = 1;

    auto backend = std::make_shared<const Backend>(montreal_backend());
    const std::vector<Request> distinct = small_mix();

    std::string json = "[\n";
    bool first = true;
    for (int clients : {1, 4}) {
        for (std::size_t capacity : {std::size_t{0}, std::size_t{256}}) {
            ServiceOptions sopts;
            sopts.cache_capacity = capacity;
            sopts.scheduler = std::make_shared<Scheduler>(workers);
            TranspileService service(sopts);

            // Client c submits every request `repeat` times, rotated by
            // its id so concurrent clients overlap on the same keys —
            // the coalescing path, not just the cache path.
            const std::size_t jobs_per_client = distinct.size() * repeat;
            auto client = [&](int id) {
                std::vector<TranspileTicket> tickets;
                tickets.reserve(jobs_per_client);
                for (int r = 0; r < repeat; ++r)
                    for (std::size_t k = 0; k < distinct.size(); ++k) {
                        const Request &req =
                            distinct[(k + id) % distinct.size()];
                        tickets.push_back(service.submit(
                            req.circuit, backend, req.options));
                    }
                for (TranspileTicket &t : tickets)
                    t.get();
            };

            auto t0 = std::chrono::steady_clock::now();
            std::vector<std::thread> threads;
            for (int c = 1; c < clients; ++c)
                threads.emplace_back(client, c);
            client(0);
            for (std::thread &t : threads)
                t.join();
            auto t1 = std::chrono::steady_clock::now();

            const double wall_ms =
                std::chrono::duration<double, std::milli>(t1 - t0).count();
            const ServiceStats stats = service.stats();
            const std::size_t jobs =
                jobs_per_client * static_cast<std::size_t>(clients);

            char row[360];
            std::snprintf(
                row, sizeof(row),
                "  {\"workload\": \"small_mix\", \"clients\": %d, "
                "\"cache\": %d, \"repeat\": %d, \"jobs\": %zu, "
                "\"distinct\": %zu, \"wall_ms\": %.1f, "
                "\"jobs_per_s\": %.1f, \"hits\": %llu, "
                "\"coalesced\": %llu, \"deduped\": %llu, "
                "\"transpiles\": %llu}",
                clients, capacity ? 1 : 0, repeat, jobs, distinct.size(),
                wall_ms, 1000.0 * static_cast<double>(jobs) / wall_ms,
                static_cast<unsigned long long>(stats.cache_hits),
                static_cast<unsigned long long>(stats.coalesced),
                static_cast<unsigned long long>(stats.cache_hits +
                                                stats.coalesced),
                static_cast<unsigned long long>(stats.transpiles_ok +
                                                stats.transpiles_failed));
            if (!first)
                json += ",\n";
            json += row;
            first = false;
            std::printf("clients=%d cache=%zu: %zu jobs in %.1f ms "
                        "(%.1f jobs/s; %llu deduped, %llu transpiled)\n",
                        clients, capacity, jobs, wall_ms,
                        1000.0 * static_cast<double>(jobs) / wall_ms,
                        static_cast<unsigned long long>(stats.cache_hits +
                                                        stats.coalesced),
                        static_cast<unsigned long long>(
                            stats.transpiles_ok + stats.transpiles_failed));
        }
    }
    json += "\n]\n";

    std::ofstream f(out_path);
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    f << json;
    std::printf("json written to %s\n", out_path.c_str());
    return 0;
}
