// Reproduces Figure 11: additional CNOT count and success rate of four
// routing configurations (SABRE, NASSC, SABRE+HA, NASSC+HA) under the
// ibmq_montreal noise model (paper Sec. VI-D; 8192 trials each).

#include "bench_common.h"
#include "nassc/sim/noise.h"

using namespace nassc;
using namespace nassc::bench;

namespace {

struct Config
{
    const char *label;
    RoutingAlgorithm router;
    bool noise_aware;
};

} // namespace

int
main(int argc, char **argv)
{
    Args args = parse_args(argc, argv, /*default_seeds=*/2);
    int trials = 8192;
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--trials") && i + 1 < argc)
            trials = std::atoi(argv[i + 1]);

    Backend dev = montreal_backend();
    NoiseModel nm = NoiseModel::from_backend(dev);

    const Config configs[] = {
        {"SABRE", RoutingAlgorithm::kSabre, false},
        {"NASSC", RoutingAlgorithm::kNassc, false},
        {"SABRE+HA", RoutingAlgorithm::kSabre, true},
        {"NASSC+HA", RoutingAlgorithm::kNassc, true},
    };

    std::printf("Fig. 11: noise-model comparison on %s "
                "(%d trials, %d seeds)\n\n",
                dev.name.c_str(), trials, args.seeds);
    std::printf("%-15s | %10s %10s %10s %10s | metric\n", "benchmark",
                "SABRE", "NASSC", "SABRE+HA", "NASSC+HA");

    std::vector<std::string> csv;
    csv.push_back("benchmark,config,cx_add,success_rate");

    for (const BenchmarkCase &bc : fig11_benchmarks()) {
        TranspileResult base =
            TranspileContext::global().optimize_only(bc.circuit);
        uint64_t ideal = ideal_outcome(bc.circuit);

        double add[4] = {0, 0, 0, 0};
        double succ[4] = {0, 0, 0, 0};
        for (int c = 0; c < 4; ++c) {
            for (int s = 0; s < args.seeds; ++s) {
                TranspileOptions opts;
                opts.router = configs[c].router;
                opts.noise_aware = configs[c].noise_aware;
                opts.seed = static_cast<unsigned>(s);
                TranspileResult r =
                    TranspileContext::global().transpile(bc.circuit, dev,
                                                         opts);
                add[c] += r.cx_total - base.cx_total;
                SuccessRate sr = monte_carlo_success(
                    r.circuit, nm, r.final_l2p, ideal,
                    trials / args.seeds, 1000 + s);
                succ[c] += sr.rate;
            }
            add[c] /= args.seeds;
            succ[c] /= args.seeds;
            char line[256];
            std::snprintf(line, sizeof(line), "%s,%s,%.1f,%.4f",
                          bc.name.c_str(), configs[c].label, add[c],
                          succ[c]);
            csv.push_back(line);
        }

        std::printf("%-15s | %10.1f %10.1f %10.1f %10.1f | add. CNOTs\n",
                    bc.name.c_str(), add[0], add[1], add[2], add[3]);
        std::printf("%-15s | %10.4f %10.4f %10.4f %10.4f | success\n", "",
                    succ[0], succ[1], succ[2], succ[3]);
        std::fflush(stdout);
    }

    std::printf("\nExpectation (paper): NASSC has the fewest additional "
                "CNOTs and the best success rate.\n");
    write_csv(args.csv, csv);
    return 0;
}
