// Ablation: isolate the two NASSC mechanisms — the optimization-aware
// *cost function* (routing decisions) and the optimization-aware *SWAP
// decomposition* (orientation flags + 1q movement).  DESIGN.md calls this
// design choice out; the paper motivates both (Sec. IV-B vs IV-E) but
// only evaluates them together.

#include "bench_common.h"

using namespace nassc;
using namespace nassc::bench;

namespace {

double
avg_cx(const QuantumCircuit &circuit, const Backend &dev,
       const TranspileOptions &base, int seeds)
{
    double t = 0.0;
    for (int s = 0; s < seeds; ++s) {
        TranspileOptions opts = base;
        opts.seed = static_cast<unsigned>(s);
        t += TranspileContext::global().transpile(circuit, dev, opts).cx_total;
    }
    return t / seeds;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args = parse_args(argc, argv);
    Backend dev = linear_backend(25);

    std::printf("Ablation: cost function vs SWAP decomposition on %s "
                "(%d seeds)\n\n",
                dev.name.c_str(), args.seeds);
    std::printf("%-15s %9s %9s %9s %9s\n", "name", "SABRE", "cost-only",
                "full", "full-red%");

    for (const BenchmarkCase &bc : table_benchmarks()) {
        if (bc.circuit.num_qubits() > dev.coupling.num_qubits())
            continue;
        TranspileOptions sabre;
        sabre.router = RoutingAlgorithm::kSabre;

        TranspileOptions cost_only;
        cost_only.router = RoutingAlgorithm::kNassc;
        cost_only.orientation_aware_decomposition = false;

        TranspileOptions full;
        full.router = RoutingAlgorithm::kNassc;

        double s = avg_cx(bc.circuit, dev, sabre, args.seeds);
        double c = avg_cx(bc.circuit, dev, cost_only, args.seeds);
        double f = avg_cx(bc.circuit, dev, full, args.seeds);
        std::printf("%-15s %9.1f %9.1f %9.1f %8.2f%%\n", bc.name.c_str(),
                    s, c, f, 100.0 * (1.0 - f / s));
        std::fflush(stdout);
    }

    std::printf("\nReading: 'cost-only' routes like NASSC but expands "
                "SWAPs with the fixed template;\nthe gap to 'full' is the "
                "contribution of optimization-aware decomposition.\n");
    return 0;
}
