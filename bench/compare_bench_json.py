#!/usr/bin/env python3
"""Advisory perf-regression gate over BENCH_routing.json.

Compares the wall times of a fresh routing sweep against the committed
baseline (bench/BENCH_baseline.json by default) and exits non-zero when
any (circuit, router, layout_trials) cell regressed by more than
--threshold (default 15%).  Wired into Release CI as a
continue-on-error step: wall times are machine-dependent, so the gate
flags suspects for a human rather than blocking merges.  Refresh the
baseline by re-running `cmake --build build --target bench_json` on the
reference machine and committing build/BENCH_routing.json over
bench/BENCH_baseline.json.

Besides the timings the rows carry `route_passes`, the number of
full-circuit routing passes a transpile() of that cell performs (one
scoring pass per layout trial, plus the separate final route unless the
winning trial's pass is reused — kSabre cells therefore report exactly
one pass fewer than kNassc).  Pass-count changes are reported
informationally: they are integers, so any drift means the pipeline
shape changed, not the machine.

With --service-current (and optionally --service-baseline), also diffs
a BENCH_service.json serving-layer sweep: jobs_per_s drift per
(workload, clients, cache) cell is printed informationally — service
throughput is scheduler- and machine-noisy, so it NEVER fails the
gate — while `transpiles` drift is exact (dedup guarantees one
execution per distinct key) and flags a pipeline-shape change the same
way route_passes does.

With --server-current (and optionally --server-baseline), also diffs a
BENCH_server.json daemon sweep the same way, per (transport, clients,
shards) cell: requests_per_s drift is informational (wire throughput is
even noisier than the in-process service numbers), while `transpiles`
drift is exact — the dedup invariant holds fleet-wide, so any change
means the sharding or cache shape moved, not the machine.  The same
files carry span-histogram summary rows ({"histogram": "queue_wait_us",
"p50_us": …, "p99_us": …}) emitted by server_throughput_json; their
p50/p99 drift is reported informationally too, and because the
quantiles sit on log2 bucket edges any report is at least a full
doubling.

With --scaling-current (and optionally --scaling-baseline), also diffs
a BENCH_scaling.json topology-axis sweep per (device, workload) cell:
wall_ms drift is informational (the 4k-qubit cells are the noisiest in
the suite), while peak_distance_bytes and rows_computed are
deterministic — the pipeline is seeded end to end — so ANY drift there
is a provider/router shape change and is flagged loudly, though it
still never fails the gate (the tier-1 equivalence tests own
correctness).

Usage: compare_bench_json.py [--threshold F] [baseline.json] current.json
                             [--service-baseline S.json]
                             [--service-current S.json]
                             [--server-baseline S.json]
                             [--server-current S.json]
                             [--scaling-baseline S.json]
                             [--scaling-current S.json]
"""

import argparse
import json
import sys


def load_rows(path):
    """Index a sweep file by (circuit, router, layout_trials)."""
    with open(path) as f:
        rows = json.load(f)
    return {(r["circuit"], r["router"], r.get("layout_trials", 1)): r
            for r in rows}


def compare(baseline, current, field, threshold):
    """Yield (key, base, cur, ratio) for every regressed cell."""
    for key, base_row in sorted(baseline.items()):
        cur_row = current.get(key)
        if cur_row is None or field not in base_row or field not in cur_row:
            continue  # suite/schema drift is not a regression
        base = base_row[field]
        cur = cur_row[field]
        if base <= 0.0:
            continue
        ratio = cur / base
        if ratio > 1.0 + threshold:
            yield key, base, cur, ratio


def route_pass_changes(baseline, current):
    """Yield (key, base, cur) for every cell whose pass count moved."""
    for key, base_row in sorted(baseline.items()):
        cur_row = current.get(key)
        if cur_row is None:
            continue
        if "route_passes" not in base_row or "route_passes" not in cur_row:
            continue
        if base_row["route_passes"] != cur_row["route_passes"]:
            yield key, base_row["route_passes"], cur_row["route_passes"]


def load_service_rows(path):
    """Index a service sweep file by (workload, clients, cache)."""
    with open(path) as f:
        rows = json.load(f)
    return {(r["workload"], r["clients"], r["cache"]): r for r in rows}


def report_service_drift(baseline_path, current_path, threshold):
    """Print informational serving-layer drift; never fails the gate."""
    baseline = load_service_rows(baseline_path)
    current = load_service_rows(current_path)
    lines = []
    for key, base_row in sorted(baseline.items()):
        cur_row = current.get(key)
        if cur_row is None:
            continue
        workload, clients, cache = key
        label = f"{workload:12s} clients={clients} cache={cache}"
        base_tp, cur_tp = base_row["jobs_per_s"], cur_row["jobs_per_s"]
        if base_tp > 0 and abs(cur_tp / base_tp - 1.0) > threshold:
            lines.append(f"  {label} jobs_per_s {base_tp:9.1f} -> "
                         f"{cur_tp:9.1f}  ({(cur_tp / base_tp - 1) * 100:+.1f}%)")
        if base_row.get("transpiles") != cur_row.get("transpiles"):
            lines.append(f"  {label} transpiles {base_row.get('transpiles')}"
                         f" -> {cur_row.get('transpiles')} (dedup shape!)")
    if lines:
        print(f"note: service throughput drift > {threshold * 100:.0f}% "
              f"(informational):")
        print("\n".join(lines))
    else:
        print(f"service OK: no cell drifted > {threshold * 100:.0f}% "
              f"({len(current)} cells checked)")


def load_server_rows(path):
    """Index a daemon sweep file by (transport, clients, shards)."""
    with open(path) as f:
        rows = json.load(f)
    # Pre-shards baselines lack the field; those rows were shards=1.
    # Span-histogram summary rows (keyed by "histogram", no transport)
    # share the file; load_histogram_rows picks those up.
    return {(r["transport"], r["clients"], r.get("shards", 1)): r
            for r in rows if "transport" in r}


def load_histogram_rows(path):
    """Index a daemon sweep's span-histogram rows by instrument name."""
    with open(path) as f:
        rows = json.load(f)
    return {r["histogram"]: r for r in rows if "histogram" in r}


def report_histogram_drift(baseline_path, current_path, threshold):
    """Print span-latency quantile drift; never fails the gate.

    p50/p99 land on log2 bucket edges, so any reported movement is at
    least a full doubling/halving — small timer jitter cannot trip
    this, which is why it is worth printing despite being wall-time.
    """
    baseline = load_histogram_rows(baseline_path)
    current = load_histogram_rows(current_path)
    lines = []
    for name, base_row in sorted(baseline.items()):
        cur_row = current.get(name)
        if cur_row is None:
            continue
        for q in ("p50_us", "p99_us"):
            base, cur = base_row.get(q, 0), cur_row.get(q, 0)
            if base > 0 and abs(cur / base - 1.0) > threshold:
                lines.append(f"  {name:20s} {q} {base:8d} -> {cur:8d}"
                             f"  ({(cur / base - 1) * 100:+.1f}%)")
    if lines:
        print("note: span-latency quantile drift (informational, "
              "log2-bucket edges):")
        print("\n".join(lines))
    elif baseline:
        print(f"spans OK: no queue-wait/routing quantile moved more than "
              f"a bucket ({len(current)} histograms checked)")
    else:
        print("note: baseline has no span-histogram rows (pre-obs sweep); "
              "skipping quantile drift")


def report_server_drift(baseline_path, current_path, threshold):
    """Print informational daemon-sweep drift; never fails the gate."""
    baseline = load_server_rows(baseline_path)
    current = load_server_rows(current_path)
    lines = []
    for key, base_row in sorted(baseline.items()):
        cur_row = current.get(key)
        if cur_row is None:
            continue
        transport, clients, shards = key
        label = f"{transport:5s} clients={clients} shards={shards}"
        base_tp = base_row["requests_per_s"]
        cur_tp = cur_row["requests_per_s"]
        if base_tp > 0 and abs(cur_tp / base_tp - 1.0) > threshold:
            lines.append(f"  {label} requests_per_s {base_tp:9.1f} -> "
                         f"{cur_tp:9.1f}  ({(cur_tp / base_tp - 1) * 100:+.1f}%)")
        if base_row.get("transpiles") != cur_row.get("transpiles"):
            lines.append(f"  {label} transpiles {base_row.get('transpiles')}"
                         f" -> {cur_row.get('transpiles')} (dedup shape!)")
    if lines:
        print(f"note: daemon throughput drift > {threshold * 100:.0f}% "
              f"(informational):")
        print("\n".join(lines))
    else:
        print(f"server OK: no cell drifted > {threshold * 100:.0f}% "
              f"({len(current)} cells checked)")


def load_scaling_rows(path):
    """Index a scaling sweep file by (device, workload)."""
    with open(path) as f:
        rows = json.load(f)
    return {(r["device"], r["workload"]): r for r in rows}


def report_scaling_drift(baseline_path, current_path, threshold):
    """Print topology-scaling drift; never fails the gate."""
    baseline = load_scaling_rows(baseline_path)
    current = load_scaling_rows(current_path)
    wall_lines, shape_lines = [], []
    for key, base_row in sorted(baseline.items()):
        cur_row = current.get(key)
        if cur_row is None:
            continue
        device, workload = key
        label = f"{device:16s} {workload:8s}"
        base_tp, cur_tp = base_row["wall_ms"], cur_row["wall_ms"]
        if base_tp > 0 and cur_tp / base_tp > 1.0 + threshold:
            wall_lines.append(
                f"  {label} wall_ms {base_tp:9.3f} -> {cur_tp:9.3f}"
                f"  ({(cur_tp / base_tp - 1) * 100:+.1f}%)")
        # Deterministic counters: any movement is a shape change.
        for field in ("peak_distance_bytes", "rows_computed", "swaps",
                      "provider"):
            if base_row.get(field) != cur_row.get(field):
                shape_lines.append(
                    f"  {label} {field} {base_row.get(field)} -> "
                    f"{cur_row.get(field)}")
    if wall_lines:
        print(f"note: scaling wall_ms drift > {threshold * 100:.0f}% "
              f"(informational):")
        print("\n".join(wall_lines))
    if shape_lines:
        print("note: scaling sweep DETERMINISTIC counters moved "
              "(provider/router shape change, informational):")
        print("\n".join(shape_lines))
    if not wall_lines and not shape_lines:
        print(f"scaling OK: no cell drifted > {threshold * 100:.0f}% and "
              f"all deterministic counters match "
              f"({len(current)} cells checked)")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", nargs="?", default="bench/BENCH_baseline.json")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="relative wall-time slack before flagging "
                         "(default 0.15 = 15%%)")
    ap.add_argument("--service-baseline",
                    default="bench/BENCH_service_baseline.json",
                    help="serving-layer sweep baseline (informational)")
    ap.add_argument("--service-current", default=None,
                    help="fresh BENCH_service.json to diff informationally")
    ap.add_argument("--server-baseline",
                    default="bench/BENCH_server.json",
                    help="daemon sweep baseline (informational)")
    ap.add_argument("--server-current", default=None,
                    help="fresh BENCH_server.json to diff informationally")
    ap.add_argument("--scaling-baseline",
                    default="bench/BENCH_scaling_baseline.json",
                    help="topology scaling sweep baseline (informational)")
    ap.add_argument("--scaling-current", default=None,
                    help="fresh BENCH_scaling.json to diff informationally")
    args = ap.parse_args()

    if args.service_current:
        # Doubled slack, like layout_ms: throughput cells are noisy.
        # Strictly informational: a missing or corrupt sweep file (e.g.
        # the bench_service run was skipped) must not abort the script
        # before the routing wall_ms gate below gets its say.
        try:
            report_service_drift(args.service_baseline, args.service_current,
                                 2 * args.threshold)
        except (OSError, ValueError, KeyError) as e:
            print(f"note: service sweep not compared ({e})")

    if args.server_current:
        # Same contract as the service sweep: strictly informational,
        # doubled slack, and a missing file must not abort the gate.
        try:
            report_server_drift(args.server_baseline, args.server_current,
                                2 * args.threshold)
        except (OSError, ValueError, KeyError) as e:
            print(f"note: daemon sweep not compared ({e})")
        # p50/p99 queue-wait and routing-span drift rides in the same
        # files; a one-bucket move is at least +100%/-50%, far past any
        # slack, so the threshold here only suppresses rounding noise.
        try:
            report_histogram_drift(args.server_baseline, args.server_current,
                                   2 * args.threshold)
        except (OSError, ValueError, KeyError) as e:
            print(f"note: span histograms not compared ({e})")

    if args.scaling_current:
        # Same contract again: informational, doubled slack on wall
        # times; the deterministic byte/row counters are compared exactly.
        try:
            report_scaling_drift(args.scaling_baseline,
                                 args.scaling_current, 2 * args.threshold)
        except (OSError, ValueError, KeyError) as e:
            print(f"note: scaling sweep not compared ({e})")

    baseline = load_rows(args.baseline)
    current = load_rows(args.current)

    missing = sorted(set(baseline) - set(current))
    if missing:
        print(f"note: {len(missing)} baseline cell(s) absent from current "
              f"sweep (suite drift): {missing[:5]}{'...' if len(missing) > 5 else ''}")

    def rows(field, slack):
        return [f"  {circuit:16s} {router:6s} x{trials} {field:10s} "
                f"{base:9.3f} -> {cur:9.3f} ms  ({(ratio - 1) * 100:+.1f}%)"
                for (circuit, router, trials), base, cur, ratio in compare(
                    baseline, current, field, slack)]

    # Routed-pass counts are exact integers: report every change (e.g.
    # reuse regressing to an extra final route) but leave the verdict to
    # the wall-time gate below.
    pass_drift = [f"  {circuit:16s} {router:6s} x{trials} route_passes "
                  f"{base} -> {cur}"
                  for (circuit, router, trials), base, cur in
                  route_pass_changes(baseline, current)]
    if pass_drift:
        print("note: route_passes changed (pipeline shape, informational):")
        print("\n".join(pass_drift))

    # layout_ms is informational: its cells run down to ~0.1 ms where
    # timer/scheduler jitter dwarfs the threshold, so drift is printed
    # (at double slack) but only wall_ms — the routing hot path the
    # gate exists for — fails the check.
    layout_drift = rows("layout_ms", 2 * args.threshold)
    if layout_drift:
        print(f"note: layout_ms drift > {2 * args.threshold * 100:.0f}% "
              f"(informational):")
        print("\n".join(layout_drift))

    regressions = rows("wall_ms", args.threshold)
    if regressions:
        print(f"PERF REGRESSION (> {args.threshold * 100:.0f}% over "
              f"{args.baseline}):")
        print("\n".join(regressions))
        return 1
    print(f"perf OK: no wall_ms cell regressed > "
          f"{args.threshold * 100:.0f}% vs {args.baseline} "
          f"({len(current)} cells checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
