// google-benchmark microbenchmarks for the compiler's hot kernels:
// KAK decomposition, two-qubit synthesis, CNOT-cost classification,
// commutation checks, the router's per-decision kernels, and full
// routing passes.

#include <random>

#include <benchmark/benchmark.h>

#include "nassc/circuits/library.h"
#include "nassc/ir/dag.h"
#include "nassc/obs/trace.h"
#include "nassc/math/weyl.h"
#include "nassc/passes/basis_translation.h"
#include "nassc/passes/commutation.h"
#include "nassc/route/router.h"
#include "nassc/route/sabre.h"
#include "nassc/synth/kak2q.h"
#include "nassc/transpile/context.h"

namespace {

using namespace nassc;

Mat4
random_u4(std::mt19937 &rng, int n_cx)
{
    std::uniform_real_distribution<double> ang(-M_PI, M_PI);
    auto su2 = [&] {
        return mul(rz_gate(ang(rng)),
                   mul(ry_gate(ang(rng)), rz_gate(ang(rng))));
    };
    Mat4 u = tensor2(su2(), su2());
    for (int k = 0; k < n_cx; ++k)
        u = mul(tensor2(su2(), su2()), mul(cx_mat(), u));
    return u;
}

void
BM_KakDecompose(benchmark::State &state)
{
    std::mt19937 rng(1);
    std::vector<Mat4> inputs;
    for (int i = 0; i < 64; ++i)
        inputs.push_back(random_u4(rng, 3));
    size_t i = 0;
    for (auto _ : state) {
        Kak k = kak_decompose(inputs[i++ % inputs.size()]);
        benchmark::DoNotOptimize(k);
    }
}
BENCHMARK(BM_KakDecompose);

void
BM_CnotCost(benchmark::State &state)
{
    std::mt19937 rng(2);
    std::vector<Mat4> inputs;
    for (int i = 0; i < 64; ++i)
        inputs.push_back(random_u4(rng, static_cast<int>(state.range(0))));
    size_t i = 0;
    for (auto _ : state) {
        int c = cnot_cost(inputs[i++ % inputs.size()]);
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_CnotCost)->Arg(1)->Arg(2)->Arg(3);

void
BM_Synth2q(benchmark::State &state)
{
    std::mt19937 rng(3);
    std::vector<Mat4> inputs;
    for (int i = 0; i < 64; ++i)
        inputs.push_back(random_u4(rng, 3));
    size_t i = 0;
    for (auto _ : state) {
        auto gates = synth_2q_kak(inputs[i++ % inputs.size()], 0, 1);
        benchmark::DoNotOptimize(gates);
    }
}
BENCHMARK(BM_Synth2q);

void
BM_GatesCommute(benchmark::State &state)
{
    Gate a = Gate::two_q(OpKind::kCX, 0, 1);
    Gate b = Gate::two_q(OpKind::kCRX, 0, 2, 0.7);
    for (auto _ : state) {
        bool r = gates_commute(a, b);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_GatesCommute);

// ---- router hot kernels -----------------------------------------------------
//
// These drive the Router's per-decision kernels in isolation on a
// blocked front (qft(16) on montreal under the trivial layout), so the
// flat-memory / incremental-scoring speedups are measurable without the
// surrounding pass pipeline.

struct RouterFixture
{
    Backend dev = montreal_backend();
    QuantumCircuit logical = decompose_to_2q(qft(16));
    DagCircuit dag{logical};
    DistanceMatrix dist = hop_distance(dev.coupling);
    RoutingOptions opts;
    Layout init{16, 27};
    Router router{dag, dev.coupling, dist, opts};

    RouterFixture()
    {
        router.reset(init);
        router.execute_ready();
    }
};

void
BM_SwapCandidates(benchmark::State &state)
{
    RouterFixture f;
    for (auto _ : state) {
        const auto &cands = f.router.swap_candidates();
        benchmark::DoNotOptimize(cands.size());
    }
}
BENCHMARK(BM_SwapCandidates);

void
BM_ExtendedSet(benchmark::State &state)
{
    RouterFixture f;
    for (auto _ : state) {
        f.router.invalidate_extended_set(); // measure a cold rebuild
        const auto &ext = f.router.extended_set();
        benchmark::DoNotOptimize(ext.size());
    }
}
BENCHMARK(BM_ExtendedSet);

void
BM_ApplyBestSwapDecision(benchmark::State &state)
{
    // One full decision: candidate generation, (cached) extended set,
    // incremental scoring of every candidate, SWAP application.  The
    // router is rewound periodically so the front stays representative.
    RouterFixture f;
    int decisions = 0;
    for (auto _ : state) {
        f.router.apply_best_swap();
        if (++decisions == 256) {
            state.PauseTiming();
            f.router.reset(f.init);
            f.router.execute_ready();
            decisions = 0;
            state.ResumeTiming();
        }
    }
}
BENCHMARK(BM_ApplyBestSwapDecision);

void
BM_RouteTableICircuit(benchmark::State &state)
{
    // End-to-end route_circuit on a Table I workload (rd84_253: 12
    // qubits, ~1.9k gates) with a fixed SABRE-refined layout.
    Backend dev = montreal_backend();
    QuantumCircuit logical = decompose_to_2q(benchmark_by_name("rd84_253"));
    auto dist = hop_distance(dev.coupling);
    RoutingOptions opts;
    opts.algorithm = static_cast<RoutingAlgorithm>(state.range(0));
    Layout init = sabre_initial_layout(logical, dev.coupling, dist, opts);
    for (auto _ : state) {
        RoutingResult r =
            route_circuit(logical, dev.coupling, dist, init, opts);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_RouteTableICircuit)
    ->Arg(0)
    ->Arg(1) // 0 = SABRE, 1 = NASSC
    ->Unit(benchmark::kMillisecond);

void
BM_RouteQft15(benchmark::State &state)
{
    Backend dev = linear_backend(25);
    QuantumCircuit logical = decompose_to_2q(qft(15));
    auto dist = hop_distance(dev.coupling);
    RoutingOptions opts;
    opts.algorithm = static_cast<RoutingAlgorithm>(state.range(0));
    Layout init(15, 25);
    for (auto _ : state) {
        RoutingResult r =
            route_circuit(logical, dev.coupling, dist, init, opts);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_RouteQft15)->Arg(0)->Arg(1); // 0 = SABRE, 1 = NASSC

void
BM_SabreLayoutTrials(benchmark::State &state)
{
    // The LayoutSearch engine on a Table I workload: 1 trial vs N
    // trials, serial vs pooled.  Args are (layout_trials,
    // layout_threads); the layout output is bit-identical across the
    // thread counts, so these rows measure pure engine scaling.
    Backend dev = montreal_backend();
    QuantumCircuit logical = decompose_to_2q(benchmark_by_name("rd84_253"));
    auto dist = hop_distance(dev.coupling);
    RoutingOptions opts;
    opts.layout_trials = static_cast<int>(state.range(0));
    opts.layout_threads = static_cast<int>(state.range(1));
    for (auto _ : state) {
        Layout l = sabre_initial_layout(logical, dev.coupling, dist, opts);
        benchmark::DoNotOptimize(l);
    }
}
BENCHMARK(BM_SabreLayoutTrials)
    ->Args({1, 1})
    ->Args({4, 1})
    ->Args({4, 4})
    ->Args({8, 8})
    ->Unit(benchmark::kMillisecond);

void
BM_TranspileGrover8(benchmark::State &state)
{
    Backend dev = montreal_backend();
    QuantumCircuit logical = grover(8);
    for (auto _ : state) {
        TranspileOptions opts;
        opts.router = static_cast<RoutingAlgorithm>(state.range(0));
        TranspileResult r =
            TranspileContext::global().transpile(logical, dev, opts);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_TranspileGrover8)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// The obs overhead contract (obs/trace.h): a pure TraceSpan site with
// no tracer live anywhere must cost ONE relaxed atomic load — the
// armed/unarmed pair below is how that claim is checked, not assumed.
// Router::run opens one of these per routing pass.
void
BM_TraceSpanSiteUnarmed(benchmark::State &state)
{
    for (auto _ : state) {
        obs::TraceSpan span("bench_site");
        benchmark::DoNotOptimize(span);
    }
}
BENCHMARK(BM_TraceSpanSiteUnarmed);

void
BM_TraceSpanSiteArmed(benchmark::State &state)
{
    // A live tracer on this thread: every span now reads the clock
    // twice and records under the tracer's mutex.
    auto tracer = std::make_shared<obs::Tracer>("bench");
    obs::TraceScope scope(tracer);
    for (auto _ : state) {
        obs::TraceSpan span("bench_site");
        benchmark::DoNotOptimize(span);
    }
}
BENCHMARK(BM_TraceSpanSiteArmed);

} // namespace

BENCHMARK_MAIN();
