// google-benchmark microbenchmarks for the compiler's hot kernels:
// KAK decomposition, two-qubit synthesis, CNOT-cost classification,
// commutation checks, and full routing passes.

#include <random>

#include <benchmark/benchmark.h>

#include "nassc/circuits/library.h"
#include "nassc/math/weyl.h"
#include "nassc/passes/basis_translation.h"
#include "nassc/passes/commutation.h"
#include "nassc/route/sabre.h"
#include "nassc/synth/kak2q.h"
#include "nassc/transpile/transpile.h"

namespace {

using namespace nassc;

Mat4
random_u4(std::mt19937 &rng, int n_cx)
{
    std::uniform_real_distribution<double> ang(-M_PI, M_PI);
    auto su2 = [&] {
        return mul(rz_gate(ang(rng)),
                   mul(ry_gate(ang(rng)), rz_gate(ang(rng))));
    };
    Mat4 u = tensor2(su2(), su2());
    for (int k = 0; k < n_cx; ++k)
        u = mul(tensor2(su2(), su2()), mul(cx_mat(), u));
    return u;
}

void
BM_KakDecompose(benchmark::State &state)
{
    std::mt19937 rng(1);
    std::vector<Mat4> inputs;
    for (int i = 0; i < 64; ++i)
        inputs.push_back(random_u4(rng, 3));
    size_t i = 0;
    for (auto _ : state) {
        Kak k = kak_decompose(inputs[i++ % inputs.size()]);
        benchmark::DoNotOptimize(k);
    }
}
BENCHMARK(BM_KakDecompose);

void
BM_CnotCost(benchmark::State &state)
{
    std::mt19937 rng(2);
    std::vector<Mat4> inputs;
    for (int i = 0; i < 64; ++i)
        inputs.push_back(random_u4(rng, static_cast<int>(state.range(0))));
    size_t i = 0;
    for (auto _ : state) {
        int c = cnot_cost(inputs[i++ % inputs.size()]);
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_CnotCost)->Arg(1)->Arg(2)->Arg(3);

void
BM_Synth2q(benchmark::State &state)
{
    std::mt19937 rng(3);
    std::vector<Mat4> inputs;
    for (int i = 0; i < 64; ++i)
        inputs.push_back(random_u4(rng, 3));
    size_t i = 0;
    for (auto _ : state) {
        auto gates = synth_2q_kak(inputs[i++ % inputs.size()], 0, 1);
        benchmark::DoNotOptimize(gates);
    }
}
BENCHMARK(BM_Synth2q);

void
BM_GatesCommute(benchmark::State &state)
{
    Gate a = Gate::two_q(OpKind::kCX, 0, 1);
    Gate b = Gate::two_q(OpKind::kCRX, 0, 2, 0.7);
    for (auto _ : state) {
        bool r = gates_commute(a, b);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_GatesCommute);

void
BM_RouteQft15(benchmark::State &state)
{
    Backend dev = linear_backend(25);
    QuantumCircuit logical = decompose_to_2q(qft(15));
    auto dist = hop_distance(dev.coupling);
    RoutingOptions opts;
    opts.algorithm = static_cast<RoutingAlgorithm>(state.range(0));
    Layout init(15, 25);
    for (auto _ : state) {
        RoutingResult r =
            route_circuit(logical, dev.coupling, dist, init, opts);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_RouteQft15)->Arg(0)->Arg(1); // 0 = SABRE, 1 = NASSC

void
BM_TranspileGrover8(benchmark::State &state)
{
    Backend dev = montreal_backend();
    QuantumCircuit logical = grover(8);
    for (auto _ : state) {
        TranspileOptions opts;
        opts.router = static_cast<RoutingAlgorithm>(state.range(0));
        TranspileResult r = transpile(logical, dev, opts);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_TranspileGrover8)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
