// Batch transpilation CLI: sweep the paper's benchmark circuits through
// the parallel BatchTranspiler and report per-job metrics, throughput,
// and distance-cache reuse.
//
//   $ ./batch_transpile                                   # defaults
//   $ ./batch_transpile --backend grid --router both --seeds 5 --threads 8
//   $ ./batch_transpile --benchmarks qft_n15,vqe_n8 --noise-aware --csv out.csv
//   $ ./batch_transpile --benchmarks qft_n15 --repeat 4   # dedup demo
//
// Options:
//   --backend montreal|linear|grid   target device (default montreal)
//   --router nassc|sabre|both        routing cost model (default nassc)
//   --benchmarks all|NAME[,NAME...]  circuits to run (default all Table I)
//   --seeds N                        layout seeds per circuit (default 1)
//   --threads N                      worker threads (default: hardware)
//   --noise-aware                    HA noise-aware distance matrix
//   --derive-seeds                   decorrelate seeds from the batch seed
//   --repeat N                       submit the whole job list N times;
//                                    duplicates dedupe through the
//                                    TranspileService (implies --service)
//   --service                        route jobs through a TranspileService
//                                    (in-flight coalescing + result cache)
//   --csv PATH                       also write per-job results as CSV

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "nassc/circuits/library.h"
#include "nassc/service/batch_transpiler.h"

using namespace nassc;

namespace {

std::vector<std::string>
split_csv_list(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string backend_name = "montreal";
    std::string router_name = "nassc";
    std::string benchmarks = "all";
    std::string csv_path;
    int seeds = 1;
    int threads = 0;
    int repeat = 1;
    bool noise_aware = false;
    bool derive_seeds = false;
    bool use_service = false;

    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--backend") && i + 1 < argc)
            backend_name = argv[++i];
        else if (!std::strcmp(argv[i], "--router") && i + 1 < argc)
            router_name = argv[++i];
        else if (!std::strcmp(argv[i], "--benchmarks") && i + 1 < argc)
            benchmarks = argv[++i];
        else if (!std::strcmp(argv[i], "--seeds") && i + 1 < argc)
            seeds = std::atoi(argv[++i]);
        else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc)
            threads = std::atoi(argv[++i]);
        else if (!std::strcmp(argv[i], "--repeat") && i + 1 < argc)
            repeat = std::atoi(argv[++i]);
        else if (!std::strcmp(argv[i], "--service"))
            use_service = true;
        else if (!std::strcmp(argv[i], "--noise-aware"))
            noise_aware = true;
        else if (!std::strcmp(argv[i], "--derive-seeds"))
            derive_seeds = true;
        else if (!std::strcmp(argv[i], "--csv") && i + 1 < argc)
            csv_path = argv[++i];
        else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            return 2;
        }
    }
    if (seeds < 1)
        seeds = 1;
    if (repeat < 1)
        repeat = 1;
    if (repeat > 1)
        use_service = true; // duplicates only pay off with dedup

    auto device = std::make_shared<Backend>(
        backend_name == "linear" ? linear_backend(25)
        : backend_name == "grid" ? grid_backend(5, 5)
                                 : montreal_backend());

    std::vector<RoutingAlgorithm> routers;
    if (router_name == "both" || router_name == "sabre")
        routers.push_back(RoutingAlgorithm::kSabre);
    if (router_name == "both" || router_name == "nassc")
        routers.push_back(RoutingAlgorithm::kNassc);
    if (routers.empty()) {
        std::fprintf(stderr, "unknown router: %s\n", router_name.c_str());
        return 2;
    }

    std::vector<BenchmarkCase> cases;
    if (benchmarks == "all") {
        cases = table_benchmarks();
    } else {
        for (const std::string &name : split_csv_list(benchmarks)) {
            try {
                cases.push_back({name, benchmark_by_name(name)});
            } catch (const std::exception &e) {
                std::fprintf(stderr, "%s\n", e.what());
                return 2;
            }
        }
    }
    if (cases.empty()) {
        std::fprintf(stderr, "no benchmarks selected\n");
        return 2;
    }

    std::vector<TranspileJob> jobs;
    for (const BenchmarkCase &bc : cases) {
        for (RoutingAlgorithm router : routers) {
            for (int s = 0; s < seeds; ++s) {
                TranspileJob job;
                job.tag = bc.name +
                          (router == RoutingAlgorithm::kNassc ? "/nassc"
                                                              : "/sabre") +
                          "/s" + std::to_string(s);
                job.circuit = bc.circuit;
                job.backend = device;
                job.options.router = router;
                job.options.noise_aware = noise_aware;
                job.options.seed = static_cast<unsigned>(s);
                jobs.push_back(std::move(job));
            }
        }
    }
    if (repeat > 1) {
        // Whole-list rounds with unchanged tags: repeats are IDENTICAL
        // requests (derive_seeds mixes the tag, so same tag = same
        // derived seed) and dedupe through the service.
        const std::size_t round = jobs.size();
        jobs.reserve(round * static_cast<std::size_t>(repeat));
        for (int r = 1; r < repeat; ++r)
            for (std::size_t i = 0; i < round; ++i)
                jobs.push_back(jobs[i]);
    }

    BatchOptions opts;
    opts.num_threads = threads;
    opts.derive_seeds = derive_seeds;
    if (use_service) {
        ServiceOptions sopts;
        sopts.num_threads = threads;
        opts.service = std::make_shared<TranspileService>(sopts);
    }
    BatchTranspiler engine(opts);

    std::printf("batch: %zu jobs on %s, %d thread(s)\n\n", jobs.size(),
                device->name.c_str(), engine.num_threads_for(jobs.size()));
    BatchReport report = engine.run(jobs);

    std::printf("%-28s %6s %6s %6s %6s %8s\n", "job", "ok", "cx", "depth",
                "swaps", "t(s)");
    std::vector<std::string> csv;
    csv.push_back("tag,ok,seed,cx_total,depth,swaps,seconds,error");
    double cpu_seconds = 0.0;
    for (const JobResult &jr : report.results) {
        if (jr.ok) {
            std::printf("%-28s %6s %6d %6d %6d %8.3f\n", jr.tag.c_str(),
                        "yes", jr.result.cx_total, jr.result.depth,
                        jr.result.routing_stats.num_swaps,
                        jr.result.seconds);
            cpu_seconds += jr.result.seconds;
        } else {
            std::printf("%-28s %6s  FAILED: %s\n", jr.tag.c_str(), "no",
                        jr.error.c_str());
        }
        // Error text is arbitrary; keep the CSV column count stable.
        std::string safe_error = jr.error;
        for (char &c : safe_error)
            if (c == ',' || c == '\n')
                c = ';';
        char line[256];
        std::snprintf(line, sizeof(line), "%s,%d,%u,%d,%d,%d,%.4f,%s",
                      jr.tag.c_str(), jr.ok ? 1 : 0, jr.seed_used,
                      jr.ok ? jr.result.cx_total : -1,
                      jr.ok ? jr.result.depth : -1,
                      jr.ok ? jr.result.routing_stats.num_swaps : -1,
                      jr.ok ? jr.result.seconds : 0.0, safe_error.c_str());
        csv.push_back(line);
    }

    // On the service path duplicates report their original transpile's
    // seconds, so the ratio measures parallelism AND dedup together.
    std::printf("\n%zu ok, %zu failed in %.3fs wall "
                "(%.1f jobs/s, %.2fx %s speedup)\n",
                report.num_ok, report.num_failed, report.seconds,
                report.results.size() / report.seconds,
                cpu_seconds / report.seconds,
                report.used_service ? "parallel+dedup" : "parallel");
    std::printf("distance matrices computed: %zu (cache hits: %zu)\n",
                report.distance_computations,
                engine.distance_cache().hit_count());
    std::printf("full routing passes: %ld (%zu job(s) reused the "
                "winning layout trial's routed pass)\n",
                report.full_route_passes, report.num_route_reused);
    if (report.used_service)
        std::printf("service: %llu cache hit(s) + %llu coalesced of %zu "
                    "jobs; %llu transpile(s) executed, %llu eviction(s)\n",
                    static_cast<unsigned long long>(report.cache_hits),
                    static_cast<unsigned long long>(report.coalesced),
                    report.results.size(),
                    static_cast<unsigned long long>(report.transpiles),
                    static_cast<unsigned long long>(report.cache_evictions));

    if (!csv_path.empty()) {
        std::ofstream f(csv_path);
        for (const std::string &line : csv)
            f << line << "\n";
        std::printf("csv written to %s\n", csv_path.c_str());
    }
    return report.num_failed == 0 ? 0 : 1;
}
