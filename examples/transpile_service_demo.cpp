// TranspileService demo: several concurrent clients fire a mixed,
// partly overlapping workload at one service and the dedup machinery
// does its job — in-flight duplicates coalesce to a single transpile,
// repeats hit the LRU result cache, and every client still gets a
// bit-identical result.
//
//   $ ./transpile_service_demo
//   $ ./transpile_service_demo --clients 8 --repeat 4 --workers 4
//   $ ./transpile_service_demo --backend grid --cache 8
//
// Options:
//   --backend montreal|linear|grid   target device (default montreal)
//   --clients N                      concurrent client threads (default 4)
//   --repeat N                       times each client repeats its
//                                    request list (default 3)
//   --workers N                      scheduler workers (default 4)
//   --cache N                        result-cache capacity, 0 = off
//                                    (default 64)

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "nassc/circuits/library.h"
#include "nassc/service/scheduler.h"
#include "nassc/service/transpile_service.h"
#include "nassc/topo/backends.h"

using namespace nassc;

int
main(int argc, char **argv)
{
    std::string backend_name = "montreal";
    int clients = 4;
    int repeat = 3;
    int workers = 4;
    std::size_t cache = 64;

    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--backend") && i + 1 < argc)
            backend_name = argv[++i];
        else if (!std::strcmp(argv[i], "--clients") && i + 1 < argc)
            clients = std::atoi(argv[++i]);
        else if (!std::strcmp(argv[i], "--repeat") && i + 1 < argc)
            repeat = std::atoi(argv[++i]);
        else if (!std::strcmp(argv[i], "--workers") && i + 1 < argc)
            workers = std::atoi(argv[++i]);
        else if (!std::strcmp(argv[i], "--cache") && i + 1 < argc)
            cache = static_cast<std::size_t>(std::atoll(argv[++i]));
        else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            return 2;
        }
    }
    if (clients < 1)
        clients = 1;
    if (repeat < 1)
        repeat = 1;

    auto device = std::make_shared<const Backend>(
        backend_name == "linear" ? linear_backend(25)
        : backend_name == "grid" ? grid_backend(5, 5)
                                 : montreal_backend());

    // A mixed menu: different circuits, routers, and seeds.  Clients
    // draw rotated slices of it, so at any moment several clients are
    // asking for the SAME key (coalescing) while later rounds re-ask
    // for completed ones (cache hits).
    struct MenuItem
    {
        std::string name;
        QuantumCircuit circuit;
        TranspileOptions options;
    };
    std::vector<MenuItem> menu;
    auto add = [&](const std::string &name, QuantumCircuit qc,
                   RoutingAlgorithm router, unsigned seed) {
        TranspileOptions opts;
        opts.router = router;
        opts.seed = seed;
        menu.push_back({name, std::move(qc), opts});
    };
    add("qft8/nassc", qft(8), RoutingAlgorithm::kNassc, 0);
    add("qft8/sabre", qft(8), RoutingAlgorithm::kSabre, 0);
    add("ghz12/sabre", ghz(12), RoutingAlgorithm::kSabre, 1);
    add("bv10/nassc", bernstein_vazirani(10, 0x155),
        RoutingAlgorithm::kNassc, 0);
    add("vqe8/sabre", vqe_linear(8), RoutingAlgorithm::kSabre, 2);
    add("qaoa10/nassc", qaoa_maxcut(10, 2, 5), RoutingAlgorithm::kNassc, 1);

    ServiceOptions sopts;
    sopts.cache_capacity = cache;
    sopts.num_threads = workers;
    TranspileService service(sopts);

    std::printf("service demo: %d client(s) x %d round(s) over %zu "
                "distinct requests on %s (%d workers, cache %zu)\n\n",
                clients, repeat, menu.size(), device->name.c_str(), workers,
                cache);

    std::mutex print_mu;
    std::atomic<int> failures{0};
    auto client = [&](int id) {
        for (int round = 0; round < repeat; ++round) {
            // Submit this round's whole slice first, then collect:
            // overlap is what exercises coalescing.
            std::vector<TranspileTicket> tickets;
            std::vector<const MenuItem *> items;
            for (std::size_t k = 0; k < menu.size(); ++k) {
                const MenuItem &item =
                    menu[(k + static_cast<std::size_t>(id)) % menu.size()];
                tickets.push_back(
                    service.submit(item.circuit, device, item.options));
                items.push_back(&item);
            }
            for (std::size_t k = 0; k < tickets.size(); ++k) {
                const char *how =
                    tickets[k].source() == TicketSource::kCacheHit
                        ? "cache-hit"
                    : tickets[k].source() == TicketSource::kCoalesced
                        ? "coalesced"
                        : "transpiled";
                try {
                    SharedTranspileResult res = tickets[k].get();
                    std::lock_guard<std::mutex> lk(print_mu);
                    std::printf(
                        "client %d round %d %-14s %-10s cx=%-4d "
                        "depth=%-4d swaps=%d\n",
                        id, round, items[k]->name.c_str(), how,
                        res->cx_total, res->depth,
                        res->routing_stats.num_swaps);
                } catch (const std::exception &e) {
                    failures.fetch_add(1);
                    std::lock_guard<std::mutex> lk(print_mu);
                    std::printf("client %d round %d %-14s FAILED: %s\n", id,
                                round, items[k]->name.c_str(), e.what());
                }
            }
        }
    };

    std::vector<std::thread> threads;
    for (int c = 1; c < clients; ++c)
        threads.emplace_back(client, c);
    client(0);
    for (std::thread &t : threads)
        t.join();

    const ServiceStats stats = service.stats();
    std::printf("\n%llu requests: %llu cache hit(s), %llu coalesced, "
                "%llu transpile(s) executed (%llu failed), "
                "%llu eviction(s), %zu cached\n",
                static_cast<unsigned long long>(stats.requests),
                static_cast<unsigned long long>(stats.cache_hits),
                static_cast<unsigned long long>(stats.coalesced),
                static_cast<unsigned long long>(stats.transpiles_ok +
                                                stats.transpiles_failed),
                static_cast<unsigned long long>(stats.transpiles_failed),
                static_cast<unsigned long long>(stats.evictions_capacity +
                                                stats.evictions_invalidated),
                stats.cache_size);
    std::printf("dedup saved %llu of %llu requests "
                "(every key transpiled once, served many times)\n",
                static_cast<unsigned long long>(stats.cache_hits +
                                                stats.coalesced),
                static_cast<unsigned long long>(stats.requests));
    return failures.load() == 0 ? 0 : 1;
}
