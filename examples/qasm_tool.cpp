// Scenario: a command-line transpiler for OpenQASM 2.0 files — read a
// circuit, compile it for a chosen topology with either router, and
// print the compiled QASM plus a cost summary.
//
//   $ ./qasm_tool <file.qasm> [montreal|linear|grid|full] [sabre|nassc]
//
// With no arguments, a built-in demo circuit is used.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "nassc/circuits/library.h"
#include "nassc/ir/qasm.h"
#include "nassc/transpile/context.h"

using namespace nassc;

int
main(int argc, char **argv)
{
    QuantumCircuit circuit;
    if (argc > 1) {
        std::ifstream f(argv[1]);
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 1;
        }
        std::ostringstream text;
        text << f.rdbuf();
        circuit = from_qasm(text.str());
        std::printf("loaded %s: %d qubits, %zu gates\n", argv[1],
                    circuit.num_qubits(), circuit.size());
    } else {
        circuit = cuccaro_adder(4);
        std::printf("no input file; using the 10-qubit Cuccaro adder\n");
    }

    const char *topo = argc > 2 ? argv[2] : "montreal";
    Backend device;
    if (!std::strcmp(topo, "linear"))
        device = linear_backend(std::max(25, circuit.num_qubits()));
    else if (!std::strcmp(topo, "grid"))
        device = grid_backend(5, 5);
    else if (!std::strcmp(topo, "full"))
        device = fully_connected_backend(circuit.num_qubits());
    else
        device = montreal_backend();

    TranspileOptions opts;
    if (argc > 3 && !std::strcmp(argv[3], "sabre"))
        opts.router = RoutingAlgorithm::kSabre;

    if (circuit.num_qubits() > device.coupling.num_qubits()) {
        std::fprintf(stderr, "circuit does not fit on %s\n",
                     device.name.c_str());
        return 1;
    }

    TranspileResult res =
        TranspileContext::global().transpile(circuit, device, opts);
    std::fprintf(stderr,
                 "# backend=%s router=%s swaps=%d cx=%d depth=%d "
                 "time=%.3fs\n",
                 device.name.c_str(),
                 opts.router == RoutingAlgorithm::kNassc ? "nassc" : "sabre",
                 res.routing_stats.num_swaps, res.cx_total, res.depth,
                 res.seconds);
    std::printf("%s", to_qasm(res.circuit).c_str());
    return 0;
}
