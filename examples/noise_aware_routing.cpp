// Scenario: estimate real-device success rates under a calibrated noise
// model (the paper's Fig. 11 protocol) and see how routing choices change
// the outcome — including the HA noise-aware distance matrix (eq. 3).
//
//   $ ./noise_aware_routing [trials]

#include <cstdio>
#include <cstdlib>

#include "nassc/circuits/library.h"
#include "nassc/sim/noise.h"
#include "nassc/transpile/context.h"

using namespace nassc;

int
main(int argc, char **argv)
{
    int trials = argc > 1 ? std::atoi(argv[1]) : 8192;
    Backend device = montreal_backend();
    NoiseModel noise = NoiseModel::from_backend(device);

    QuantumCircuit logical = bernstein_vazirani(5, 0b1101);
    uint64_t ideal = ideal_outcome(logical);
    std::printf("bernstein-vazirani n=5, secret 1101, ideal outcome %llu\n",
                static_cast<unsigned long long>(ideal));
    std::printf("device %s, %d noisy trials per config\n\n",
                device.name.c_str(), trials);

    struct
    {
        const char *label;
        RoutingAlgorithm router;
        bool ha;
    } configs[] = {
        {"SABRE    ", RoutingAlgorithm::kSabre, false},
        {"NASSC    ", RoutingAlgorithm::kNassc, false},
        {"SABRE+HA ", RoutingAlgorithm::kSabre, true},
        {"NASSC+HA ", RoutingAlgorithm::kNassc, true},
    };

    for (auto &cfg : configs) {
        TranspileOptions opts;
        opts.router = cfg.router;
        opts.noise_aware = cfg.ha;
        TranspileResult res =
            TranspileContext::global().transpile(logical, device, opts);
        SuccessRate sr = monte_carlo_success(res.circuit, noise,
                                             res.final_l2p, ideal, trials);
        std::printf("%s  CNOTs %3d   success %.3f   (%d/%d)\n", cfg.label,
                    res.cx_total, sr.rate, sr.hits, sr.trials);
    }

    std::printf("\nFewer CNOTs -> fewer two-qubit error events -> higher "
                "success rate;\nNASSC buys exactly that (paper Sec. "
                "VI-D).\n");
    return 0;
}
