// Scenario: compile a QFT onto the ibmq_montreal heavy-hex lattice and
// compare the SABRE baseline against NASSC — the paper's Table I
// experiment for one workload, with the routing statistics that explain
// where the savings come from.
//
//   $ ./route_and_optimize [n_qubits]

#include <cstdio>
#include <cstdlib>

#include "nassc/circuits/library.h"
#include "nassc/transpile/context.h"

using namespace nassc;

int
main(int argc, char **argv)
{
    int n = argc > 1 ? std::atoi(argv[1]) : 15;
    Backend device = montreal_backend();
    QuantumCircuit logical = qft(n);

    // Optimization-only baseline: the circuit cost without any routing.
    TranspileContext &ctx = TranspileContext::global();
    TranspileResult base = ctx.optimize_only(logical);
    std::printf("qft_n%d, original optimized CNOTs: %d, depth %d\n\n", n,
                base.cx_total, base.depth);

    const char *names[2] = {"Qiskit+SABRE", "Qiskit+NASSC"};
    for (int r = 0; r < 2; ++r) {
        double cx = 0, depth = 0, secs = 0;
        RoutingStats stats{};
        const int seeds = 5;
        for (int s = 0; s < seeds; ++s) {
            TranspileOptions opts;
            opts.router = static_cast<RoutingAlgorithm>(r);
            opts.seed = static_cast<unsigned>(s);
            TranspileResult res = ctx.transpile(logical, device, opts);
            cx += res.cx_total;
            depth += res.depth;
            secs += res.seconds;
            stats.num_swaps += res.routing_stats.num_swaps;
            stats.flagged_swaps += res.routing_stats.flagged_swaps;
            stats.c2q_hits += res.routing_stats.c2q_hits;
            stats.commute1_hits += res.routing_stats.commute1_hits;
            stats.commute2_hits += res.routing_stats.commute2_hits;
            stats.moved_1q += res.routing_stats.moved_1q;
        }
        std::printf("%s (avg of %d seeds):\n", names[r], seeds);
        std::printf("  CNOT total      %.1f  (additional %.1f)\n",
                    cx / seeds, cx / seeds - base.cx_total);
        std::printf("  depth           %.1f\n", depth / seeds);
        std::printf("  swaps           %.1f\n",
                    double(stats.num_swaps) / seeds);
        if (r == 1) {
            std::printf("  swaps flagged   %.1f (commute1 %.1f, commute2 "
                        "%.1f)\n",
                        double(stats.flagged_swaps) / seeds,
                        double(stats.commute1_hits) / seeds,
                        double(stats.commute2_hits) / seeds);
            std::printf("  c2q-aware picks %.1f\n",
                        double(stats.c2q_hits) / seeds);
            std::printf("  1q gates moved  %.1f\n",
                        double(stats.moved_1q) / seeds);
        }
        std::printf("  transpile time  %.3fs\n\n", secs / seeds);
    }
    return 0;
}
