// Quickstart: build a circuit, transpile it for a real device topology
// with the NASSC router, and inspect the result.
//
//   $ ./quickstart

#include <cstdio>

#include "nassc/nassc.h"

using namespace nassc;

int
main()
{
    // 1. Build a circuit with the fluent API (or load OpenQASM 2.0).
    QuantumCircuit bell(3);
    bell.h(0);
    bell.cx(0, 1);
    bell.cx(0, 2); // long-range: will need routing on a line

    // 2. Pick a device. montreal_backend() is the 27-qubit heavy-hex
    //    lattice from the paper; linear/grid builders are also available.
    Backend device = linear_backend(5);

    // 3. Transpile. TranspileOptions selects SABRE (baseline) or NASSC
    //    (optimization-aware routing, the default).
    TranspileOptions options;
    options.router = RoutingAlgorithm::kNassc;
    TranspileResult result =
        TranspileContext::global().transpile(bell, device, options);

    std::printf("device:          %s\n", device.name.c_str());
    std::printf("inserted swaps:  %d\n", result.routing_stats.num_swaps);
    std::printf("CNOT total:      %d\n", result.cx_total);
    std::printf("depth:           %d\n", result.depth);
    std::printf("initial layout:  ");
    for (size_t l = 0; l < result.initial_l2p.size(); ++l)
        std::printf("q%zu->%d ", l, result.initial_l2p[l]);
    std::printf("\n\n%s\n", result.circuit.to_string().c_str());

    // 4. Export as OpenQASM for any downstream tool.
    std::printf("--- OpenQASM ---\n%s", to_qasm(result.circuit).c_str());
    return 0;
}
