// nasscd: the NASSC transpilation daemon.
//
// Serves the length-prefixed text protocol of serve/protocol.h over a
// unix-domain socket and/or TCP, routing every request through one
// hardened TranspileService (dedup, coalescing, byte-bounded result
// cache, TTL/generation invalidation, per-request priorities).
//
//   nasscd --unix /tmp/nassc.sock
//   nasscd --port 7747 --threads 8 --cache-bytes 134217728 --ttl 300
//   nasscd --port 0 --max-conns 64 --max-queue 128 --default-deadline 5000
//
// Sharded mode: `--shards N` turns this process into a supervised
// front door.  N child nasscd workers are fork/exec'd, each listening
// on `<unix-path>.shard<i>` and owning a consistent-hash slice of the
// request keyspace; the front forwards frames to the owning shard
// (serve/shard_router.h) and the supervisor (serve/supervisor.h)
// restarts crashed workers with backoff, quarantines flappers, and
// SIGKILLs hung ones.  `stats` answers with the fleet-merged snapshot.
//
//   nasscd --unix /tmp/nassc.sock --shards 3
//
// SIGINT/SIGTERM shut down gracefully: in-flight requests drain to
// their responses, then children are SIGTERMed (they drain the same
// way) and the process exits 0.
//
// Fault injection: set NASSC_FAILPOINTS (e.g.
// "service.transpile=2*throw(boom);protocol.write.disconnect=1*trigger")
// to arm failpoints at startup — see service/failpoint.h.  In sharded
// mode `--shard-failpoints IDX:SPEC` arms SPEC in shard IDX's FIRST
// incarnation only (restarts boot clean), which is how crash-failover
// is exercised end to end:
//
//   nasscd --unix /tmp/s.sock --shards 3
//       --shard-failpoints '1:service.transpile=1*abort()'

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <unistd.h>

#include "nassc/obs/event_log.h"
#include "nassc/serve/client.h"
#include "nassc/serve/server.h"
#include "nassc/serve/shard_router.h"
#include "nassc/serve/supervisor.h"
#include "nassc/service/failpoint.h"

namespace {

std::atomic<bool> g_stop{false};

void
on_signal(int)
{
    g_stop.store(true);
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--unix PATH] [--port N [--host H]] [options]\n"
        "\n"
        "listeners (at least one):\n"
        "  --unix PATH        unix-domain socket path\n"
        "  --port N           TCP port (0 = ephemeral, printed on start)\n"
        "  --host H           TCP bind address (default 127.0.0.1)\n"
        "\n"
        "service hardening:\n"
        "  --threads N        provision N scheduler workers\n"
        "  --cache-entries N  result-cache entry cap (default 256)\n"
        "  --cache-bytes N    result-cache byte budget (default 64 MiB)\n"
        "  --ttl SECONDS      default result TTL (0 = never expires)\n"
        "  --purge-interval S sweep expired cache entries every S seconds\n"
        "                     (default 30; 0 disables the sweep)\n"
        "\n"
        "observability:\n"
        "  --slow-ms MS       log a slow_request event for transpiles\n"
        "                     slower than MS server-side (0 = off)\n"
        "  --event-log PATH   append structured JSONL events (slow\n"
        "                     requests, sheds, deadline misses, shard\n"
        "                     restarts) to PATH; default stderr\n"
        "\n"
        "overload and deadlines:\n"
        "  --max-conns N      shed connections past N with `status\n"
        "                     overloaded` (0 = unbounded, the default)\n"
        "  --max-queue N      shed requests once N jobs are queued\n"
        "                     (0 = unbounded, the default)\n"
        "  --retry-after MS   backoff hint sent with overloaded responses\n"
        "                     (default 50)\n"
        "  --default-deadline MS\n"
        "                     deadline for requests that do not set\n"
        "                     deadline_ms themselves (0 = none)\n"
        "\n"
        "sharded serving (requires --unix; see serve/shard_router.h):\n"
        "  --shards N         run as a front door over N supervised\n"
        "                     worker processes on <unix>.shard<i>\n"
        "  --shard-timeout MS per-I/O timeout talking to a shard before\n"
        "                     failover (default 30000)\n"
        "  --shard-failpoints IDX:SPEC\n"
        "                     arm SPEC (a NASSC_FAILPOINTS list) in\n"
        "                     shard IDX's first incarnation only\n",
        argv0);
}

/** The front door's own path to re-exec as a worker. */
std::string
self_executable(const char *argv0)
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

} // namespace

int
main(int argc, char **argv)
{
    nassc::ServerOptions options;
    double purge_interval = 30.0;
    int slow_ms = 0;
    std::string event_log_path;
    int shards = 0;
    int shard_timeout_ms = 30000;
    std::vector<std::pair<int, std::string>> shard_failpoints;
    // Service flags repeated verbatim to worker argv (sharded mode):
    // workers get the SAME hardening knobs the flat daemon would.
    std::vector<std::string> worker_flags;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "nasscd: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        auto worker_flag = [&](const char *v) {
            worker_flags.push_back(arg);
            worker_flags.push_back(v);
            return v;
        };
        if (arg == "--unix") {
            options.unix_path = value();
        } else if (arg == "--port") {
            options.tcp_port = std::atoi(value());
        } else if (arg == "--host") {
            options.host = value();
        } else if (arg == "--threads") {
            options.service.num_threads = std::atoi(worker_flag(value()));
        } else if (arg == "--cache-entries") {
            options.service.cache_capacity =
                static_cast<std::size_t>(std::atoll(worker_flag(value())));
        } else if (arg == "--cache-bytes") {
            options.service.cache_max_bytes =
                static_cast<std::size_t>(std::atoll(worker_flag(value())));
        } else if (arg == "--ttl") {
            options.service.default_ttl_seconds =
                std::atof(worker_flag(value()));
        } else if (arg == "--purge-interval") {
            purge_interval = std::atof(worker_flag(value()));
        } else if (arg == "--slow-ms") {
            slow_ms = std::atoi(worker_flag(value()));
        } else if (arg == "--event-log") {
            event_log_path = value();
        } else if (arg == "--max-conns") {
            options.max_connections =
                static_cast<std::size_t>(std::atoll(value()));
        } else if (arg == "--max-queue") {
            options.service.max_queued =
                static_cast<std::size_t>(std::atoll(worker_flag(value())));
        } else if (arg == "--retry-after") {
            options.retry_after_ms = std::atoi(worker_flag(value()));
        } else if (arg == "--default-deadline") {
            options.default_deadline_ms = std::atoi(worker_flag(value()));
        } else if (arg == "--shards") {
            shards = std::atoi(value());
        } else if (arg == "--shard-timeout") {
            shard_timeout_ms = std::atoi(value());
        } else if (arg == "--shard-failpoints") {
            const std::string spec = value();
            const std::size_t colon = spec.find(':');
            if (colon == std::string::npos || colon == 0) {
                std::fprintf(stderr,
                             "nasscd: --shard-failpoints wants IDX:SPEC, "
                             "got '%s'\n",
                             spec.c_str());
                return 2;
            }
            shard_failpoints.emplace_back(
                std::atoi(spec.substr(0, colon).c_str()),
                spec.substr(colon + 1));
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "nasscd: unknown flag %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (options.unix_path.empty() && options.tcp_port < 0) {
        usage(argv[0]);
        return 2;
    }
    if (shards > 0 && options.unix_path.empty()) {
        std::fprintf(stderr,
                     "nasscd: --shards needs --unix (worker sockets are "
                     "<unix>.shard<i>)\n");
        return 2;
    }

    const int armed = nassc::failpoint::arm_from_env();
    if (armed > 0)
        std::printf("nasscd armed %d failpoint(s) from NASSC_FAILPOINTS\n",
                    armed);

    if (slow_ms > 0)
        nassc::obs::EventLog::global().set_slow_threshold_us(
            static_cast<std::uint64_t>(slow_ms) * 1000);
    std::FILE *event_sink = stderr;
    if (!event_log_path.empty()) {
        event_sink = std::fopen(event_log_path.c_str(), "a");
        if (!event_sink) {
            std::fprintf(stderr,
                         "nasscd: cannot open --event-log %s; using stderr\n",
                         event_log_path.c_str());
            event_sink = stderr;
        }
    }
    // Flush the bounded ring (slow requests, sheds, deadline misses,
    // supervisor restarts) as JSONL; called every main-loop tick and
    // once more at shutdown so nothing buffered is lost.
    auto flush_events = [&]() {
        const std::vector<std::string> lines =
            nassc::obs::EventLog::global().drain();
        if (lines.empty())
            return;
        for (const std::string &line : lines) {
            std::fputs(line.c_str(), event_sink);
            std::fputc('\n', event_sink);
        }
        std::fflush(event_sink);
    };

    try {
        // --- Sharded front door: supervisor + router around the same
        // NasscServer shell. ---
        std::shared_ptr<nassc::ShardRouter> router;
        std::unique_ptr<nassc::Supervisor> supervisor;
        nassc::Supervisor *supervisor_raw = nullptr;
        std::vector<std::string> shard_paths;
        if (shards > 0) {
            const std::string exe = self_executable(argv[0]);
            for (int s = 0; s < shards; ++s)
                shard_paths.push_back(options.unix_path + ".shard" +
                                      std::to_string(s));

            nassc::ShardRouterOptions ropts;
            for (const std::string &path : shard_paths) {
                nassc::ServeEndpoint endpoint;
                endpoint.unix_path = path;
                ropts.shards.push_back(endpoint);
            }
            ropts.io_timeout_ms = shard_timeout_ms;
            ropts.extra_stats =
                [&supervisor_raw]()
                -> std::vector<std::pair<std::string, std::string>> {
                if (!supervisor_raw)
                    return {};
                const nassc::SupervisorStats s = supervisor_raw->stats();
                return {
                    {"supervisor_spawns", std::to_string(s.spawns)},
                    {"supervisor_restarts", std::to_string(s.restarts)},
                    {"supervisor_quarantines",
                     std::to_string(s.quarantines)},
                    {"supervisor_hang_kills", std::to_string(s.hang_kills)},
                };
            };
            router = std::make_shared<nassc::ShardRouter>(std::move(ropts));

            nassc::SupervisorOptions sopts;
            sopts.shards = shards;
            sopts.command = [exe, &shard_paths,
                             worker_flags](int s) -> std::vector<std::string> {
                std::vector<std::string> cmd = {
                    exe, "--unix", shard_paths[static_cast<std::size_t>(s)]};
                cmd.insert(cmd.end(), worker_flags.begin(),
                           worker_flags.end());
                return cmd;
            };
            if (!shard_failpoints.empty())
                sopts.first_spawn_env =
                    [shard_failpoints](int s) -> std::vector<std::string> {
                    std::vector<std::string> env;
                    for (const auto &fp : shard_failpoints)
                        if (fp.first == s)
                            env.push_back("NASSC_FAILPOINTS=" + fp.second);
                    return env;
                };
            sopts.health_interval_ms = 500;
            sopts.health_check = [&shard_paths](int s) {
                try {
                    nassc::ServeClient probe =
                        nassc::ServeClient::connect_unix(
                            shard_paths[static_cast<std::size_t>(s)]);
                    probe.set_io_timeout(1000);
                    return probe.ping();
                } catch (const std::exception &) {
                    return false;
                }
            };
            sopts.on_state = [&router](int s, bool up) {
                if (up)
                    router->mark_live(s);
                else
                    router->mark_dead(s);
            };
            supervisor = std::make_unique<nassc::Supervisor>(
                std::move(sopts));
            supervisor->start();
            supervisor_raw = supervisor.get();
            if (!supervisor->wait_all_alive(15000))
                std::fprintf(stderr,
                             "nasscd: warning: not every shard came up in "
                             "15s; supervision continues\n");
            options.shard_router = router;
        }

        nassc::NasscServer server(std::move(options));
        server.start();
        if (!server.unix_path().empty())
            std::printf("nasscd listening on unix:%s\n",
                        server.unix_path().c_str());
        if (server.tcp_port() >= 0)
            std::printf("nasscd listening on tcp:%d\n", server.tcp_port());
        if (shards > 0)
            std::printf("nasscd fronting %d shard(s)\n", shards);
        std::fflush(stdout); // wrappers wait for this line before connecting

        std::signal(SIGINT, on_signal);
        std::signal(SIGTERM, on_signal);
        // The main loop doubles as the cache janitor: TTL expiry is
        // otherwise lazy (entries die when next touched), so a quiet
        // daemon would pin expired results in memory indefinitely.
        // (Workers run their own sweep; the front's service is idle.)
        const auto purge_every =
            std::chrono::duration<double>(purge_interval);
        auto last_purge = std::chrono::steady_clock::now();
        while (!g_stop.load()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            flush_events();
            if (purge_interval <= 0 || shards > 0)
                continue;
            const auto now = std::chrono::steady_clock::now();
            if (now - last_purge >= purge_every) {
                server.service().purge_expired();
                last_purge = now;
            }
        }

        std::printf("nasscd draining...\n");
        std::fflush(stdout);
        // Order matters: stop accepting + drain in-flight forwards
        // FIRST, close the shard pools, THEN stop the workers (which
        // drain their own in-flight work on SIGTERM).
        server.stop();
        if (router)
            router->close_pools();
        if (supervisor)
            supervisor->stop();
        flush_events();
        if (event_sink != stderr)
            std::fclose(event_sink);
        if (shards > 0) {
            const nassc::ShardRouterStats rs = router->stats_snapshot();
            const nassc::SupervisorStats ss = supervisor->stats();
            std::printf("nasscd forwarded %llu frames "
                        "(%llu failovers, %llu shard restarts)\n",
                        static_cast<unsigned long long>(rs.forwards),
                        static_cast<unsigned long long>(rs.failovers),
                        static_cast<unsigned long long>(ss.restarts));
        } else {
            const nassc::ServiceStats stats = server.service().stats();
            std::printf(
                "nasscd served %llu requests "
                "(%llu hits, %llu coalesced, %llu transpiles)\n",
                static_cast<unsigned long long>(stats.requests),
                static_cast<unsigned long long>(stats.cache_hits),
                static_cast<unsigned long long>(stats.coalesced),
                static_cast<unsigned long long>(stats.transpiles_ok +
                                                stats.transpiles_failed));
        }
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "nasscd: fatal: %s\n", e.what());
        return 1;
    }
}
