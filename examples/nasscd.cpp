// nasscd: the NASSC transpilation daemon.
//
// Serves the length-prefixed text protocol of serve/protocol.h over a
// unix-domain socket and/or TCP, routing every request through one
// hardened TranspileService (dedup, coalescing, byte-bounded result
// cache, TTL/generation invalidation, per-request priorities).
//
//   nasscd --unix /tmp/nassc.sock
//   nasscd --port 7747 --threads 8 --cache-bytes 134217728 --ttl 300
//   nasscd --port 0 --max-conns 64 --max-queue 128 --default-deadline 5000
//
// SIGINT/SIGTERM shut down gracefully: in-flight requests drain to
// their responses, then the process exits 0.
//
// Fault injection: set NASSC_FAILPOINTS (e.g.
// "service.transpile=2*throw(boom);protocol.write.disconnect=1*trigger")
// to arm failpoints at startup — see service/failpoint.h.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "nassc/serve/server.h"
#include "nassc/service/failpoint.h"

namespace {

std::atomic<bool> g_stop{false};

void
on_signal(int)
{
    g_stop.store(true);
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--unix PATH] [--port N [--host H]] [options]\n"
        "\n"
        "listeners (at least one):\n"
        "  --unix PATH        unix-domain socket path\n"
        "  --port N           TCP port (0 = ephemeral, printed on start)\n"
        "  --host H           TCP bind address (default 127.0.0.1)\n"
        "\n"
        "service hardening:\n"
        "  --threads N        provision N scheduler workers\n"
        "  --cache-entries N  result-cache entry cap (default 256)\n"
        "  --cache-bytes N    result-cache byte budget (default 64 MiB)\n"
        "  --ttl SECONDS      default result TTL (0 = never expires)\n"
        "  --purge-interval S sweep expired cache entries every S seconds\n"
        "                     (default 30; 0 disables the sweep)\n"
        "\n"
        "overload and deadlines:\n"
        "  --max-conns N      shed connections past N with `status\n"
        "                     overloaded` (0 = unbounded, the default)\n"
        "  --max-queue N      shed requests once N jobs are queued\n"
        "                     (0 = unbounded, the default)\n"
        "  --retry-after MS   backoff hint sent with overloaded responses\n"
        "                     (default 50)\n"
        "  --default-deadline MS\n"
        "                     deadline for requests that do not set\n"
        "                     deadline_ms themselves (0 = none)\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    nassc::ServerOptions options;
    double purge_interval = 30.0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "nasscd: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--unix") {
            options.unix_path = value();
        } else if (arg == "--port") {
            options.tcp_port = std::atoi(value());
        } else if (arg == "--host") {
            options.host = value();
        } else if (arg == "--threads") {
            options.service.num_threads = std::atoi(value());
        } else if (arg == "--cache-entries") {
            options.service.cache_capacity =
                static_cast<std::size_t>(std::atoll(value()));
        } else if (arg == "--cache-bytes") {
            options.service.cache_max_bytes =
                static_cast<std::size_t>(std::atoll(value()));
        } else if (arg == "--ttl") {
            options.service.default_ttl_seconds = std::atof(value());
        } else if (arg == "--purge-interval") {
            purge_interval = std::atof(value());
        } else if (arg == "--max-conns") {
            options.max_connections =
                static_cast<std::size_t>(std::atoll(value()));
        } else if (arg == "--max-queue") {
            options.service.max_queued =
                static_cast<std::size_t>(std::atoll(value()));
        } else if (arg == "--retry-after") {
            options.retry_after_ms = std::atoi(value());
        } else if (arg == "--default-deadline") {
            options.default_deadline_ms = std::atoi(value());
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "nasscd: unknown flag %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (options.unix_path.empty() && options.tcp_port < 0) {
        usage(argv[0]);
        return 2;
    }

    const int armed = nassc::failpoint::arm_from_env();
    if (armed > 0)
        std::printf("nasscd armed %d failpoint(s) from NASSC_FAILPOINTS\n",
                    armed);

    try {
        nassc::NasscServer server(std::move(options));
        server.start();
        if (!server.unix_path().empty())
            std::printf("nasscd listening on unix:%s\n",
                        server.unix_path().c_str());
        if (server.tcp_port() >= 0)
            std::printf("nasscd listening on tcp:%d\n", server.tcp_port());
        std::fflush(stdout); // wrappers wait for this line before connecting

        std::signal(SIGINT, on_signal);
        std::signal(SIGTERM, on_signal);
        // The main loop doubles as the cache janitor: TTL expiry is
        // otherwise lazy (entries die when next touched), so a quiet
        // daemon would pin expired results in memory indefinitely.
        const auto purge_every =
            std::chrono::duration<double>(purge_interval);
        auto last_purge = std::chrono::steady_clock::now();
        while (!g_stop.load()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            if (purge_interval <= 0)
                continue;
            const auto now = std::chrono::steady_clock::now();
            if (now - last_purge >= purge_every) {
                server.service().purge_expired();
                last_purge = now;
            }
        }

        std::printf("nasscd draining...\n");
        std::fflush(stdout);
        server.stop();
        const nassc::ServiceStats stats = server.service().stats();
        std::printf("nasscd served %llu requests "
                    "(%llu hits, %llu coalesced, %llu transpiles)\n",
                    static_cast<unsigned long long>(stats.requests),
                    static_cast<unsigned long long>(stats.cache_hits),
                    static_cast<unsigned long long>(stats.coalesced),
                    static_cast<unsigned long long>(stats.transpiles_ok +
                                                    stats.transpiles_failed));
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "nasscd: fatal: %s\n", e.what());
        return 1;
    }
}
