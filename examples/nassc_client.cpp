// nassc_client: command-line client for the nasscd daemon.
//
// Default mode transpiles one OpenQASM 2.0 file (or stdin) and prints
// the routed QASM:
//
//   nassc_client --unix /tmp/nassc.sock circuit.qasm
//   nassc_client --port 7747 --backend grid_5x5 --option router=sabre -
//
// Other modes:
//
//   --builtin NAME   transpile a library benchmark circuit by name
//   --stats          print the daemon's ServiceStats snapshot
//   --metrics        scrape the daemon's Prometheus text exposition
//                    (a sharded front door answers with the fleet's
//                    bucket-exact histogram merge)
//   --smoke N        CI smoke: N client threads push a duplicated
//                    workload through the daemon and verify that every
//                    response is BIT-IDENTICAL to an in-process
//                    transpile() of the same circuit, and that the
//                    daemon transpiled each distinct request exactly
//                    once (dedup invariant).  Assumes a fresh daemon;
//                    exits nonzero on any violation.
//   --tolerate-faults
//                    with --smoke: the daemon has fault injection armed
//                    (NASSC_FAILPOINTS), so also retry `status error`
//                    responses and relax the exact dedup accounting —
//                    bit-identity of every successful response stays
//                    strictly enforced.
//   --repeat R       with --smoke: run the workload R times over (a
//                    sustained run, so a shard can be crashed while
//                    requests are in flight).
//   --tolerate-restarts
//                    with --smoke: the daemon is a sharded front door
//                    whose workers may crash and restart mid-run.  A
//                    crashed worker's counters reset, so ALL
//                    stats-delta accounting is skipped — what stays
//                    strictly enforced is that every request succeeds
//                    (zero non-shed failures; transport faults and
//                    `overloaded` shed retry transparently) and every
//                    response is bit-identical to the local transpile.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "nassc/circuits/library.h"
#include "nassc/ir/qasm.h"
#include "nassc/serve/client.h"
#include "nassc/transpile/context.h"

namespace {

struct Args
{
    std::string unix_path;
    std::string host = "127.0.0.1";
    int port = -1;
    std::string backend = "ibmq_montreal";
    std::vector<std::pair<std::string, std::string>> options;
    std::string builtin;
    std::string qasm_file;
    bool stats = false;
    bool metrics = false;
    int smoke_threads = 0;
    int repeat = 1;
    bool tolerate_faults = false;
    bool tolerate_restarts = false;
};

nassc::ServeEndpoint
endpoint(const Args &args)
{
    if (args.unix_path.empty() && args.port < 0)
        throw std::runtime_error("no --unix or --port given");
    nassc::ServeEndpoint ep;
    ep.unix_path = args.unix_path;
    ep.host = args.host;
    ep.tcp_port = args.port;
    return ep;
}

nassc::RetryPolicy
smoke_policy(const Args &args, unsigned seed)
{
    nassc::RetryPolicy policy;
    policy.max_attempts = 8;
    policy.base_backoff_ms = 5;
    policy.max_backoff_ms = 500;
    policy.jitter_seed = seed;
    policy.retry_application_errors = args.tolerate_faults;
    if (args.tolerate_restarts) {
        // Shard crashes take a restart-backoff to heal; give the
        // client enough budget to outlast the supervisor's schedule,
        // and a per-I/O timeout so a request wedged on a dying worker
        // fails over instead of hanging.
        policy.max_attempts = 12;
        policy.max_backoff_ms = 1000;
        policy.io_timeout_ms = 30000;
    }
    return policy;
}

std::string
read_input(const std::string &path)
{
    std::ostringstream body;
    if (path == "-" || path.empty()) {
        body << std::cin.rdbuf();
    } else {
        std::ifstream in(path);
        if (!in)
            throw std::runtime_error("cannot open " + path);
        body << in.rdbuf();
    }
    return body.str();
}

/** One smoke work item: a circuit + wire options, duplicated per key. */
struct SmokeJob
{
    std::string name;
    std::string qasm;
    std::vector<std::pair<std::string, std::string>> options;
    std::string key; ///< distinct-request identity (name + options)
};

int
run_smoke(const Args &args)
{
    using nassc::QuantumCircuit;

    // Small mixed workload; every (circuit, router) pair appears
    // TWICE so dedup (cache hit or coalesce) must trigger.
    std::vector<std::pair<std::string, QuantumCircuit>> menu;
    menu.emplace_back("ghz12", nassc::ghz(12));
    menu.emplace_back("qft6", nassc::qft(6));
    menu.emplace_back("bv8", nassc::bernstein_vazirani(8, 0x95));
    menu.emplace_back("vqe6", nassc::vqe_linear(6));

    std::vector<SmokeJob> jobs;
    for (const auto &entry : menu) {
        for (const char *router : {"nassc", "sabre"}) {
            SmokeJob job;
            job.name = entry.first;
            job.qasm = nassc::to_qasm(entry.second);
            job.options = {{"router", router}, {"seed", "3"}};
            job.key = job.name + "/" + router;
            jobs.push_back(job);
            jobs.push_back(job); // the duplicate
        }
    }
    const std::size_t distinct = jobs.size() / 2;
    // --repeat stretches the run (every extra pass is pure duplicates)
    // so there is load in flight while a shard is being crashed.
    const std::size_t base_jobs = jobs.size();
    for (int r = 1; r < args.repeat; ++r)
        for (std::size_t i = 0; i < base_jobs; ++i)
            jobs.push_back(jobs[i]);

    // Expected answers, computed in-process through the same public
    // pipeline the daemon uses.
    std::map<std::string, std::string> expected;
    for (const SmokeJob &job : jobs) {
        if (expected.count(job.key))
            continue;
        const nassc::TranspileOptions opts =
            nassc::parse_transpile_options(job.options);
        const nassc::TranspileResult local = nassc::TranspileContext::global()
                                                 .transpile(
                                                     nassc::from_qasm(
                                                         job.qasm),
                                                     nassc::montreal_backend(),
                                                     opts);
        expected[job.key] = nassc::to_qasm(local.circuit);
    }

    nassc::RetryingServeClient control(endpoint(args), smoke_policy(args, 0));
    const std::map<std::string, std::uint64_t> before = control.stats();

    std::mutex mu;
    std::vector<std::string> failures;
    nassc::RetryStats retried; // summed across threads
    std::vector<std::thread> threads;
    const int nthreads = args.smoke_threads;
    for (int t = 0; t < nthreads; ++t) {
        threads.emplace_back([&, t] {
            // Retrying client per thread: survives injected worker
            // faults, mid-frame disconnects, and load shedding, with a
            // per-thread jitter stream so retriers decorrelate.
            nassc::RetryingServeClient client(
                endpoint(args),
                smoke_policy(args, static_cast<unsigned>(t) + 1));
            try {
                for (std::size_t i = t; i < jobs.size();
                     i += static_cast<std::size_t>(nthreads)) {
                    const SmokeJob &job = jobs[i];
                    const nassc::ServeResponse resp = client.transpile_qasm(
                        job.qasm, "ibmq_montreal", job.options);
                    if (resp.qasm != expected[job.key]) {
                        std::lock_guard<std::mutex> lk(mu);
                        failures.push_back(
                            job.key + ": daemon QASM differs from local "
                                      "transpile (source=" +
                            resp.source + ")");
                    }
                }
            } catch (const std::exception &e) {
                std::lock_guard<std::mutex> lk(mu);
                failures.push_back(std::string("client thread: ") +
                                   e.what());
            }
            const nassc::RetryStats &rs = client.retry_stats();
            std::lock_guard<std::mutex> lk(mu);
            retried.attempts += rs.attempts;
            retried.retries += rs.retries;
            retried.reconnects += rs.reconnects;
            retried.overloaded += rs.overloaded;
            retried.backoff_ms += rs.backoff_ms;
        });
    }
    for (std::thread &th : threads)
        th.join();

    if (args.tolerate_restarts) {
        // A crashed shard took its counters with it, so any delta can
        // be nonsense (even negative, which would wrap the uint64s) —
        // skip the accounting entirely.  What this mode proves is the
        // failover contract: ZERO failed requests and every response
        // bit-identical, which the per-response checks above enforced.
        if (!failures.empty()) {
            for (const std::string &f : failures)
                std::fprintf(stderr, "SMOKE FAIL: %s\n", f.c_str());
            return 1;
        }
        std::printf("smoke ok (restart-tolerant): %zu requests "
                    "(%zu distinct) on %d threads, zero failures, "
                    "responses bit-identical to local transpile\n",
                    jobs.size(), distinct, nthreads);
        std::printf(
            "smoke retries: %llu attempts, %llu retries, "
            "%llu reconnects, %llu overloaded, %llu ms backing off\n",
            static_cast<unsigned long long>(retried.attempts),
            static_cast<unsigned long long>(retried.retries),
            static_cast<unsigned long long>(retried.reconnects),
            static_cast<unsigned long long>(retried.overloaded),
            static_cast<unsigned long long>(retried.backoff_ms));
        return 0;
    }

    const std::map<std::string, std::uint64_t> after = control.stats();
    auto delta = [&](const char *key) {
        return after.at(key) - before.at(key);
    };

    if (delta("requests") < jobs.size())
        failures.push_back("daemon saw " +
                           std::to_string(delta("requests")) +
                           " transpile requests, expected >= " +
                           std::to_string(jobs.size()));
    if (!args.tolerate_faults) {
        if (delta("transpiles_failed") != 0)
            failures.push_back(std::to_string(delta("transpiles_failed")) +
                               " transpiles failed");
        // The dedup invariant: a fresh daemon transpiles each DISTINCT
        // request exactly once; every duplicate must ride the cache or
        // an in-flight twin.
        if (delta("transpiles_ok") != distinct)
            failures.push_back("dedup violated: " +
                               std::to_string(delta("transpiles_ok")) +
                               " transpiles for " +
                               std::to_string(distinct) +
                               " distinct requests");
        if (delta("cache_hits") + delta("coalesced") !=
            jobs.size() - distinct)
            failures.push_back(
                "dedup accounting off: " +
                std::to_string(delta("cache_hits")) + " hits + " +
                std::to_string(delta("coalesced")) + " coalesced for " +
                std::to_string(jobs.size() - distinct) + " duplicates");
    } else {
        // Injected faults burn transpile attempts, so exact dedup
        // accounting no longer holds; the floor that must: every
        // distinct request eventually transpiled at least once (each
        // response above was checked bit-identical regardless).
        if (delta("transpiles_ok") < distinct)
            failures.push_back("only " +
                               std::to_string(delta("transpiles_ok")) +
                               " transpiles succeeded for " +
                               std::to_string(distinct) +
                               " distinct requests");
    }

    if (!failures.empty()) {
        for (const std::string &f : failures)
            std::fprintf(stderr, "SMOKE FAIL: %s\n", f.c_str());
        return 1;
    }
    std::printf("smoke ok: %zu requests (%zu distinct) on %d threads, "
                "responses bit-identical to local transpile, "
                "%llu hits + %llu coalesced\n",
                jobs.size(), distinct, nthreads,
                static_cast<unsigned long long>(delta("cache_hits")),
                static_cast<unsigned long long>(delta("coalesced")));
    std::printf("smoke retries: %llu attempts, %llu retries, "
                "%llu reconnects, %llu overloaded, %llu ms backing off\n",
                static_cast<unsigned long long>(retried.attempts),
                static_cast<unsigned long long>(retried.retries),
                static_cast<unsigned long long>(retried.reconnects),
                static_cast<unsigned long long>(retried.overloaded),
                static_cast<unsigned long long>(retried.backoff_ms));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "nassc_client: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--unix") {
            args.unix_path = value();
        } else if (arg == "--port") {
            args.port = std::atoi(value());
        } else if (arg == "--host") {
            args.host = value();
        } else if (arg == "--backend") {
            args.backend = value();
        } else if (arg == "--option") {
            const std::string kv = value();
            const std::size_t eq = kv.find('=');
            if (eq == std::string::npos) {
                std::fprintf(stderr,
                             "nassc_client: --option wants key=value\n");
                return 2;
            }
            args.options.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
        } else if (arg == "--builtin") {
            args.builtin = value();
        } else if (arg == "--stats") {
            args.stats = true;
        } else if (arg == "--metrics") {
            args.metrics = true;
        } else if (arg == "--smoke") {
            args.smoke_threads = std::atoi(value());
        } else if (arg == "--tolerate-faults") {
            args.tolerate_faults = true;
        } else if (arg == "--tolerate-restarts") {
            args.tolerate_restarts = true;
        } else if (arg == "--repeat") {
            args.repeat = std::atoi(value());
        } else if (arg == "--help" || arg == "-h") {
            std::fprintf(
                stderr,
                "usage: nassc_client (--unix PATH | --port N [--host H]) "
                "[--backend NAME] [--option k=v]... "
                "[--builtin NAME | --stats | --metrics | --smoke N "
                "[--repeat R] [--tolerate-faults] [--tolerate-restarts] "
                "| FILE|-]\n"
                "  --metrics  scrape the daemon's Prometheus exposition\n"
                "  --option trace=1  print per-stage span lines (stderr)\n");
            return 0;
        } else {
            args.qasm_file = arg;
        }
    }

    try {
        if (args.smoke_threads > 0)
            return run_smoke(args);

        // Single-shot path rides the retrying client too: a daemon
        // still warming up (connect refused) or briefly overloaded
        // should not fail a one-off CLI call.
        nassc::RetryingServeClient client(endpoint(args),
                                          smoke_policy(args, 0));
        if (args.stats) {
            for (const auto &kv : client.stats())
                std::printf("%s %llu\n", kv.first.c_str(),
                            static_cast<unsigned long long>(kv.second));
            return 0;
        }
        if (args.metrics) {
            // Prometheus text exposition verbatim: pipe into a scraper
            // or promtool without post-processing.  A sharded front
            // answers with the fleet's bucket-exact merge.
            const std::string body = client.metrics();
            std::fputs(body.c_str(), stdout);
            if (!body.empty() && body.back() != '\n')
                std::fputc('\n', stdout);
            return 0;
        }
        std::string qasm;
        if (!args.builtin.empty())
            qasm = nassc::to_qasm(nassc::benchmark_by_name(args.builtin));
        else
            qasm = read_input(args.qasm_file);
        const nassc::ServeResponse resp =
            client.transpile_qasm(qasm, args.backend, args.options);
        std::fprintf(stderr, "source: %s\n", resp.source.c_str());
        if (!resp.trace_id.empty())
            std::fprintf(stderr, "trace-id: %s\n", resp.trace_id.c_str());
        for (const auto &span : resp.spans)
            std::fprintf(stderr, "span %s %llu us\n", span.first.c_str(),
                         static_cast<unsigned long long>(span.second));
        if (resp.degraded)
            std::fprintf(stderr,
                         "degraded: deadline hit after %d layout trial(s)\n",
                         resp.trials_consumed);
        std::fputs(resp.qasm.c_str(), stdout);
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "nassc_client: %s\n", e.what());
        return 1;
    }
}
