#!/usr/bin/env bash
# End-to-end smoke test for the nasscd daemon, run by CI on Release
# builds (and usable locally: tools/nasscd_smoke.sh [BUILD_DIR]).
#
# Exercises the full production path as separate PROCESSES — the
# in-process coverage in tests/test_serve.cc cannot catch daemonization
# bugs (signal handling, socket lifecycle, shutdown drain):
#
#   1. start nasscd on a fresh Unix socket and wait for it to listen;
#   2. nassc_client --smoke 4: four client threads push a duplicated
#      workload and verify every response is bit-identical to an
#      in-process transpile() AND that the daemon transpiled each
#      distinct request exactly once (dedup invariant);
#   3. scrape `--metrics` and check nassc_requests_total agrees with
#      the stats verb and the driven load, then drive one traced
#      request (`--option trace=1`) and check its span lines;
#   4. one more single-shot request (--builtin) over a fresh connection;
#   5. SIGTERM: the daemon must drain and exit 0.
#
# NASSC_SMOKE_FAILPOINTS=1 runs the same sequence against a daemon with
# a fault profile armed (an injected worker fault plus a mid-frame
# disconnect); the client runs with --tolerate-faults and must recover
# by retrying, and the SIGTERM drain must still exit 0.
#
# NASSC_SMOKE_SHARDS=1 runs the SHARDED deployment instead: a front
# door with --shards 3, a long restart-tolerant smoke load, and a
# kill -9 of one worker shard mid-run.  The client must finish with
# zero failures and bit-identical responses (transparent failover),
# the supervisor must restart the shard, and the SIGTERM drain must
# still exit 0 with every socket (front + shards) unlinked.
set -euo pipefail

BUILD_DIR=${1:-build}
SOCK=$(mktemp -u /tmp/nasscd_smoke_XXXXXX.sock)

# Only the daemon arms failpoints from the environment (the client
# never calls arm_from_env), so a plain export is safe.
CLIENT_FLAG=""
if [ "${NASSC_SMOKE_FAILPOINTS:-0}" != "0" ]; then
    export NASSC_FAILPOINTS='service.transpile=2*throw(injected worker fault);protocol.write.disconnect=1*trigger'
    CLIENT_FLAG="--tolerate-faults"
    echo "nasscd_smoke: failpoint profile armed"
fi

for bin in nasscd nassc_client; do
    if [ ! -x "$BUILD_DIR/$bin" ]; then
        echo "nasscd_smoke: $BUILD_DIR/$bin missing (build examples first)" >&2
        exit 2
    fi
done

SHARDS=0
DAEMON_ARGS=(--unix "$SOCK" --threads 4)
if [ "${NASSC_SMOKE_SHARDS:-0}" != "0" ]; then
    SHARDS=3
    DAEMON_ARGS=(--unix "$SOCK" --shards "$SHARDS" --threads 2)
    echo "nasscd_smoke: sharded mode ($SHARDS worker shards)"
fi

"$BUILD_DIR/nasscd" "${DAEMON_ARGS[@]}" &
DAEMON_PID=$!
trap 'kill -9 "$DAEMON_PID" 2>/dev/null || true; rm -f "$SOCK" "$SOCK".shard* 2>/dev/null' EXIT

# Wait for the listening socket (the daemon prints its banner only
# after bind+listen, so the socket file appearing means ready).
for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || {
        echo "nasscd_smoke: daemon died before listening" >&2
        exit 1
    }
    sleep 0.1
done
[ -S "$SOCK" ] || { echo "nasscd_smoke: socket never appeared" >&2; exit 1; }

if [ "$SHARDS" -gt 0 ]; then
    # Wait for every worker shard's socket too — the front only routes
    # once the supervisor has the fleet up.
    for i in $(seq 0 $((SHARDS - 1))); do
        for _ in $(seq 1 100); do
            [ -S "$SOCK.shard$i" ] && break
            sleep 0.1
        done
        [ -S "$SOCK.shard$i" ] || {
            echo "nasscd_smoke: shard $i socket never appeared" >&2
            exit 1
        }
    done

    # Find a worker shard's pid by scanning /proc cmdlines for its
    # socket path.  (pgrep -f / pkill -f are booby traps here: the
    # pattern text appears in THIS shell's own cmdline, and unescaped
    # dots match any byte.)
    find_shard_pid() {
        local p
        for p in /proc/[0-9]*/cmdline; do
            if tr '\0' '\n' < "$p" 2>/dev/null | grep -Fxq "$SOCK.shard1"
            then
                basename "$(dirname "$p")"
                return 0
            fi
        done
        return 1
    }
    SHARD_PID=$(find_shard_pid) || {
        echo "nasscd_smoke: could not locate shard 1's pid" >&2
        exit 1
    }

    # Long restart-tolerant smoke load in the background, then murder
    # shard 1 mid-run.  Failover must make the load finish with ZERO
    # failures and bit-identical responses; the supervisor must bring
    # the shard back.
    "$BUILD_DIR/nassc_client" --unix "$SOCK" --smoke 4 --repeat 1000 \
        --tolerate-restarts &
    SMOKE_PID=$!
    sleep 1.5
    if ! kill -0 "$SMOKE_PID" 2>/dev/null; then
        echo "nasscd_smoke: smoke load finished before the crash" \
             "(machine too fast — raise --repeat)" >&2
        wait "$SMOKE_PID" || exit 1
        exit 1
    fi
    kill -9 "$SHARD_PID"
    echo "nasscd_smoke: killed shard 1 (pid $SHARD_PID) mid-load"
    SMOKE_STATUS=0
    wait "$SMOKE_PID" || SMOKE_STATUS=$?
    if [ "$SMOKE_STATUS" -ne 0 ]; then
        echo "nasscd_smoke: sharded smoke load failed ($SMOKE_STATUS)" >&2
        exit 1
    fi

    # The supervisor restarted the shard and the fleet is whole again:
    # merged stats must show the restart and all shards live.
    STATS=$("$BUILD_DIR/nassc_client" --unix "$SOCK" --stats)
    RESTARTS=$(printf '%s\n' "$STATS" |
               awk '$1 == "supervisor_restarts" { print $2 }')
    LIVE=$(printf '%s\n' "$STATS" | awk '$1 == "shards_live" { print $2 }')
    if [ "${RESTARTS:-0}" -lt 1 ]; then
        echo "nasscd_smoke: expected >=1 supervisor restart, got" \
             "'${RESTARTS:-}'" >&2
        exit 1
    fi
    if [ "${LIVE:-0}" -ne "$SHARDS" ]; then
        echo "nasscd_smoke: expected $SHARDS live shards, got" \
             "'${LIVE:-}'" >&2
        exit 1
    fi
    echo "nasscd_smoke: failover survived ($RESTARTS restart(s)," \
         "$LIVE/$SHARDS shards live)"
else
    "$BUILD_DIR/nassc_client" --unix "$SOCK" --smoke 4 \
        ${CLIENT_FLAG:+$CLIENT_FLAG}
fi

# Observability: the Prometheus scrape must exist and agree with the
# stats verb — both count one increment per accepted transpile request,
# and in sharded mode both are worker-only merges, so they move in
# lockstep.  The smoke drove 16 transpile requests per pass (4 circuits
# x 2 routers x 2 duplicates); retries (fault mode) and long repeats
# with a crash-reset shard (sharded mode) can only leave the counter at
# or above one clean pass.
METRICS=$("$BUILD_DIR/nassc_client" --unix "$SOCK" --metrics)
REQ_TOTAL=$(printf '%s\n' "$METRICS" |
            awk '$1 == "nassc_requests_total" { print $2 }')
STATS_REQ=$("$BUILD_DIR/nassc_client" --unix "$SOCK" --stats |
            awk '$1 == "requests" { print $2 }')
DRIVEN=16
if [ -z "${REQ_TOTAL:-}" ]; then
    echo "nasscd_smoke: metrics scrape has no nassc_requests_total" >&2
    printf '%s\n' "$METRICS" >&2
    exit 1
fi
if [ "$REQ_TOTAL" -ne "${STATS_REQ:-0}" ]; then
    echo "nasscd_smoke: nassc_requests_total ($REQ_TOTAL) disagrees with" \
         "stats requests row (${STATS_REQ:-missing})" >&2
    exit 1
fi
if [ "$SHARDS" -gt 0 ] || [ -n "$CLIENT_FLAG" ]; then
    if [ "$REQ_TOTAL" -lt "$DRIVEN" ]; then
        echo "nasscd_smoke: nassc_requests_total $REQ_TOTAL < driven" \
             "$DRIVEN" >&2
        exit 1
    fi
elif [ "$REQ_TOTAL" -ne "$DRIVEN" ]; then
    echo "nasscd_smoke: nassc_requests_total $REQ_TOTAL != driven" \
         "$DRIVEN" >&2
    exit 1
fi
echo "nasscd_smoke: metrics scrape ok (nassc_requests_total=$REQ_TOTAL)"

# A traced request end to end: span lines must cover the documented
# stages on a miss-or-hit path (queue_wait appears either way).
TRACE_ERR=$("$BUILD_DIR/nassc_client" --unix "$SOCK" --builtin bv_n5 \
    --option trace=1 ${CLIENT_FLAG:+$CLIENT_FLAG} 2>&1 >/dev/null)
for stage in queue_wait; do
    if ! printf '%s\n' "$TRACE_ERR" | grep -q "^span $stage "; then
        echo "nasscd_smoke: trace=1 response missing span '$stage'" >&2
        printf '%s\n' "$TRACE_ERR" >&2
        exit 1
    fi
done
echo "nasscd_smoke: trace=1 spans ok"

# A fresh connection after the smoke burst: the daemon keeps serving.
"$BUILD_DIR/nassc_client" --unix "$SOCK" --builtin bv_n5 \
    ${CLIENT_FLAG:+$CLIENT_FLAG} >/dev/null

# Graceful shutdown: SIGTERM must drain and exit 0, and the socket
# path must be unlinked on the way out.
kill -TERM "$DAEMON_PID"
DAEMON_STATUS=0
wait "$DAEMON_PID" || DAEMON_STATUS=$?
if [ "$DAEMON_STATUS" -ne 0 ]; then
    echo "nasscd_smoke: daemon exited $DAEMON_STATUS on SIGTERM" >&2
    exit 1
fi
if [ -e "$SOCK" ]; then
    echo "nasscd_smoke: daemon left stale socket $SOCK" >&2
    exit 1
fi
if [ "$SHARDS" -gt 0 ]; then
    for i in $(seq 0 $((SHARDS - 1))); do
        if [ -e "$SOCK.shard$i" ]; then
            echo "nasscd_smoke: stale shard socket $SOCK.shard$i" >&2
            exit 1
        fi
    done
fi
trap - EXIT
echo "nasscd_smoke: ok"
