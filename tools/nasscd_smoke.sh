#!/usr/bin/env bash
# End-to-end smoke test for the nasscd daemon, run by CI on Release
# builds (and usable locally: tools/nasscd_smoke.sh [BUILD_DIR]).
#
# Exercises the full production path as separate PROCESSES — the
# in-process coverage in tests/test_serve.cc cannot catch daemonization
# bugs (signal handling, socket lifecycle, shutdown drain):
#
#   1. start nasscd on a fresh Unix socket and wait for it to listen;
#   2. nassc_client --smoke 4: four client threads push a duplicated
#      workload and verify every response is bit-identical to an
#      in-process transpile() AND that the daemon transpiled each
#      distinct request exactly once (dedup invariant);
#   3. one more single-shot request (--builtin) over a fresh connection;
#   4. SIGTERM: the daemon must drain and exit 0.
#
# NASSC_SMOKE_FAILPOINTS=1 runs the same sequence against a daemon with
# a fault profile armed (an injected worker fault plus a mid-frame
# disconnect); the client runs with --tolerate-faults and must recover
# by retrying, and the SIGTERM drain must still exit 0.
set -euo pipefail

BUILD_DIR=${1:-build}
SOCK=$(mktemp -u /tmp/nasscd_smoke_XXXXXX.sock)

# Only the daemon arms failpoints from the environment (the client
# never calls arm_from_env), so a plain export is safe.
CLIENT_FLAG=""
if [ "${NASSC_SMOKE_FAILPOINTS:-0}" != "0" ]; then
    export NASSC_FAILPOINTS='service.transpile=2*throw(injected worker fault);protocol.write.disconnect=1*trigger'
    CLIENT_FLAG="--tolerate-faults"
    echo "nasscd_smoke: failpoint profile armed"
fi

for bin in nasscd nassc_client; do
    if [ ! -x "$BUILD_DIR/$bin" ]; then
        echo "nasscd_smoke: $BUILD_DIR/$bin missing (build examples first)" >&2
        exit 2
    fi
done

"$BUILD_DIR/nasscd" --unix "$SOCK" --threads 4 &
DAEMON_PID=$!
trap 'kill -9 "$DAEMON_PID" 2>/dev/null || true; rm -f "$SOCK"' EXIT

# Wait for the listening socket (the daemon prints its banner only
# after bind+listen, so the socket file appearing means ready).
for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || {
        echo "nasscd_smoke: daemon died before listening" >&2
        exit 1
    }
    sleep 0.1
done
[ -S "$SOCK" ] || { echo "nasscd_smoke: socket never appeared" >&2; exit 1; }

"$BUILD_DIR/nassc_client" --unix "$SOCK" --smoke 4 ${CLIENT_FLAG:+$CLIENT_FLAG}

# A fresh connection after the smoke burst: the daemon keeps serving.
"$BUILD_DIR/nassc_client" --unix "$SOCK" --builtin bv_n5 \
    ${CLIENT_FLAG:+$CLIENT_FLAG} >/dev/null

# Graceful shutdown: SIGTERM must drain and exit 0, and the socket
# path must be unlinked on the way out.
kill -TERM "$DAEMON_PID"
DAEMON_STATUS=0
wait "$DAEMON_PID" || DAEMON_STATUS=$?
if [ "$DAEMON_STATUS" -ne 0 ]; then
    echo "nasscd_smoke: daemon exited $DAEMON_STATUS on SIGTERM" >&2
    exit 1
fi
if [ -e "$SOCK" ]; then
    echo "nasscd_smoke: daemon left stale socket $SOCK" >&2
    exit 1
fi
trap - EXIT
echo "nasscd_smoke: ok"
